// Package klimit implements a k-limited storage-graph shape analysis in
// the tradition of Jones & Muchnick [JM81] and its descendants [LH88a,
// CWZ90] — the paper's §2.1 point of comparison.
//
// Abstract heap nodes are allocation sites, k-limited: the first K
// allocations from a site keep their identity, later ones fold into the
// site's K-th node. Pointer parameters are summary nodes whose fields
// reach per-type summary nodes with self-edges (the unknown caller
// heap). The analysis is flow-sensitive with graph joins at merges and
// loop fixed points.
//
// Its decisive weakness — the reason the paper develops ADDS instead —
// falls out naturally: a list built in a loop folds onto one abstract
// node, giving the storage graph a next self-edge, so the analysis
// cannot distinguish an acyclic list from a truly cyclic structure, and
// must answer "may revisit" for every interesting traversal.
package klimit

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// DefaultK is the default k-limit.
const DefaultK = 2

// NodeID identifies an abstract heap node.
type NodeID int

// Null is the abstract NULL target (no node).
const Null NodeID = -1

type nodeInfo struct {
	key     string // "site@line:col#idx", "param:p", "type:T"
	typ     string
	summary bool
}

// Graph is an abstract storage graph plus variable bindings.
type Graph struct {
	nodes []nodeInfo
	byKey map[string]NodeID
	// edges[n][field] = set of targets.
	edges map[NodeID]map[string]map[NodeID]bool
	// env binds pointer variables to node sets.
	env map[string]map[NodeID]bool
	// allocCount tracks per-site allocation counts for k-limiting.
	allocCount map[string]int
}

func newGraph() *Graph {
	return &Graph{
		byKey:      map[string]NodeID{},
		edges:      map[NodeID]map[string]map[NodeID]bool{},
		env:        map[string]map[NodeID]bool{},
		allocCount: map[string]int{},
	}
}

func (g *Graph) node(key, typ string, summary bool) NodeID {
	if id, ok := g.byKey[key]; ok {
		return id
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, nodeInfo{key: key, typ: typ, summary: summary})
	g.byKey[key] = id
	return id
}

func (g *Graph) addEdge(from NodeID, field string, to NodeID) {
	if to == Null {
		return
	}
	m := g.edges[from]
	if m == nil {
		m = map[string]map[NodeID]bool{}
		g.edges[from] = m
	}
	set := m[field]
	if set == nil {
		set = map[NodeID]bool{}
		m[field] = set
	}
	set[to] = true
}

func (g *Graph) setVar(v string, targets map[NodeID]bool) {
	g.env[v] = targets
}

func (g *Graph) clone() *Graph {
	n := newGraph()
	n.nodes = append([]nodeInfo(nil), g.nodes...)
	for k, v := range g.byKey {
		n.byKey[k] = v
	}
	for from, m := range g.edges {
		nm := map[string]map[NodeID]bool{}
		for f, set := range m {
			ns := map[NodeID]bool{}
			for to := range set {
				ns[to] = true
			}
			nm[f] = ns
		}
		n.edges[from] = nm
	}
	for v, set := range g.env {
		ns := map[NodeID]bool{}
		for id := range set {
			ns[id] = true
		}
		n.env[v] = ns
	}
	for s, c := range g.allocCount {
		n.allocCount[s] = c
	}
	return n
}

// join merges another graph into g (both index nodes by key, so node
// identities align).
func (g *Graph) join(o *Graph) bool {
	changed := false
	for _, ni := range o.nodes {
		if _, ok := g.byKey[ni.key]; !ok {
			g.node(ni.key, ni.typ, ni.summary)
			changed = true
		}
	}
	remap := func(id NodeID, from *Graph) NodeID {
		return g.byKey[from.nodes[id].key]
	}
	for from, m := range o.edges {
		gf := remap(from, o)
		for f, set := range m {
			for to := range set {
				gt := remap(to, o)
				if !g.hasEdge(gf, f, gt) {
					g.addEdge(gf, f, gt)
					changed = true
				}
			}
		}
	}
	for v, set := range o.env {
		cur := g.env[v]
		if cur == nil {
			cur = map[NodeID]bool{}
			g.env[v] = cur
		}
		for id := range set {
			gid := remap(id, o)
			if !cur[gid] {
				cur[gid] = true
				changed = true
			}
		}
	}
	for s, c := range o.allocCount {
		if c > g.allocCount[s] {
			g.allocCount[s] = c
			changed = true
		}
	}
	return changed
}

func (g *Graph) hasEdge(from NodeID, field string, to NodeID) bool {
	if m, ok := g.edges[from]; ok {
		if set, ok := m[field]; ok {
			return set[to]
		}
	}
	return false
}

func (g *Graph) equal(o *Graph) bool {
	return g.fingerprint() == o.fingerprint()
}

func (g *Graph) fingerprint() string {
	var parts []string
	for _, ni := range g.nodes {
		parts = append(parts, "n:"+ni.key)
	}
	for from, m := range g.edges {
		for f, set := range m {
			for to := range set {
				parts = append(parts, fmt.Sprintf("e:%s.%s>%s", g.nodes[from].key, f, g.nodes[to].key))
			}
		}
	}
	for v, set := range g.env {
		for id := range set {
			parts = append(parts, fmt.Sprintf("v:%s>%s", v, g.nodes[id].key))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// typeSummary returns the per-type summary node, creating it with
// self-edges on all its pointer fields (the unknown heap).
func (a *Analysis) typeSummary(g *Graph, typ string) NodeID {
	key := "type:" + typ
	if id, ok := g.byKey[key]; ok {
		return id
	}
	id := g.node(key, typ, true)
	decl := a.prog.Universe.Decl(typ)
	if decl != nil {
		for _, pf := range decl.Pointers {
			target := a.typeSummary(g, pf.Type)
			g.addEdge(id, pf.Name, target)
		}
	}
	return id
}

// Analysis runs k-limited storage analysis over one program.
type Analysis struct {
	prog *lang.Program
	K    int
	// graphs holds the fixed-point graph at each loop head.
	graphs map[lang.Stmt]*Graph
}

// New prepares the analysis (graphs are computed per function on
// demand).
func New(prog *lang.Program, k int) *Analysis {
	if k < 1 {
		k = DefaultK
	}
	return &Analysis{prog: prog, K: k, graphs: map[lang.Stmt]*Graph{}}
}

// Name identifies the baseline in reports.
func (a *Analysis) Name() string { return fmt.Sprintf("k-limited(k=%d)", a.K) }

// AnalyzeFunc runs the analysis over a function body, recording loop
// head graphs, and returns the exit graph.
func (a *Analysis) AnalyzeFunc(fnName string) (*Graph, error) {
	fn := a.prog.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("klimit: no function %q", fnName)
	}
	g := newGraph()
	for _, prm := range fn.Params {
		if elem, ok := lang.IsPointer(prm.Type); ok {
			id := g.node("param:"+prm.Name, elem, true)
			// The parameter may point anywhere in the caller's heap.
			decl := a.prog.Universe.Decl(elem)
			if decl != nil {
				for _, pf := range decl.Pointers {
					g.addEdge(id, pf.Name, a.typeSummary(g, pf.Type))
				}
			}
			g.setVar(prm.Name, map[NodeID]bool{id: true})
		}
	}
	out := a.block(fn.Body, g)
	return out, nil
}

func (a *Analysis) block(b *lang.Block, g *Graph) *Graph {
	if b == nil {
		return g
	}
	for _, s := range b.Stmts {
		g = a.stmt(s, g)
	}
	return g
}

func (a *Analysis) stmt(s lang.Stmt, g *Graph) *Graph {
	switch s := s.(type) {
	case *lang.Block:
		return a.block(s, g)

	case *lang.VarStmt:
		if _, isPtr := lang.IsPointer(s.DeclType); !isPtr {
			return g
		}
		if s.Init == nil {
			g.setVar(s.Name, map[NodeID]bool{})
			return g
		}
		return a.assign(g, s.Name, s.Init, s.Pos())

	case *lang.AssignStmt:
		if id, ok := s.LHS.(*lang.Ident); ok {
			if _, isPtr := lang.IsPointer(id.Type()); isPtr {
				return a.assign(g, id.Name, s.RHS, s.Pos())
			}
			return g
		}
		if fe, ok := s.LHS.(*lang.FieldExpr); ok {
			if _, isPtr := lang.IsPointer(fe.Type()); isPtr {
				return a.store(g, fe, s.RHS)
			}
		}
		return g

	case *lang.CallStmt:
		return a.havocCall(g, s.Call)

	case *lang.ReturnStmt:
		return g

	case *lang.IfStmt:
		g1 := a.block(s.Then, g.clone())
		g2 := g.clone()
		if s.Else != nil {
			g2 = a.block(s.Else, g2)
		}
		g1.join(g2)
		return g1

	case *lang.WhileStmt:
		head := g
		for i := 0; i < 64; i++ {
			body := a.block(s.Body, head.clone())
			next := head.clone()
			if !next.join(body) && next.equal(head) {
				break
			}
			if next.equal(head) {
				break
			}
			head = next
		}
		a.graphs[s] = head
		return head

	case *lang.ForStmt:
		head := g
		for i := 0; i < 64; i++ {
			body := a.block(s.Body, head.clone())
			next := head.clone()
			if !next.join(body) && next.equal(head) {
				break
			}
			if next.equal(head) {
				break
			}
			head = next
		}
		a.graphs[s] = head
		return head
	}
	return g
}

func (a *Analysis) targets(g *Graph, e lang.Expr) map[NodeID]bool {
	switch e := e.(type) {
	case *lang.NullLit:
		return map[NodeID]bool{}
	case *lang.Ident:
		if set, ok := g.env[e.Name]; ok {
			return set
		}
		return map[NodeID]bool{}
	case *lang.NewExpr:
		// Handled in assign (needs the site); treat as fresh summary
		// when reached through other paths.
		return map[NodeID]bool{a.typeSummary(g, e.TypeName): true}
	case *lang.FieldExpr:
		base := e.Base()
		if base == nil {
			return map[NodeID]bool{}
		}
		out := map[NodeID]bool{}
		for n := range g.env[base.Name] {
			if m, ok := g.edges[n]; ok {
				for to := range m[e.Field] {
					out[to] = true
				}
			}
		}
		return out
	case *lang.CallExpr:
		if elem, ok := lang.IsPointer(e.Type()); ok {
			return map[NodeID]bool{a.typeSummary(g, elem): true}
		}
		return map[NodeID]bool{}
	}
	return map[NodeID]bool{}
}

func (a *Analysis) assign(g *Graph, name string, rhs lang.Expr, pos lang.Pos) *Graph {
	if ne, ok := rhs.(*lang.NewExpr); ok {
		site := fmt.Sprintf("site@%s", pos)
		cnt := g.allocCount[site]
		if cnt < a.K {
			g.allocCount[site] = cnt + 1
		}
		idx := g.allocCount[site]
		key := fmt.Sprintf("%s#%d", site, idx)
		summary := cnt >= a.K // folded: the k-th node absorbs the rest
		id := g.node(key, ne.TypeName, summary)
		if cnt >= a.K {
			g.nodes[id].summary = true
		}
		g.setVar(name, map[NodeID]bool{id: true})
		return g
	}
	if call, ok := rhs.(*lang.CallExpr); ok {
		g = a.havocCall(g, call)
	}
	g.setVar(name, a.targets(g, rhs))
	return g
}

func (a *Analysis) store(g *Graph, lhs *lang.FieldExpr, rhs lang.Expr) *Graph {
	base := lhs.Base()
	if base == nil {
		return g
	}
	srcs := g.env[base.Name]
	tgts := a.targets(g, rhs)
	_, rhsIsNull := rhs.(*lang.NullLit)

	// Strong update only when the base is a single non-summary node and
	// the field is not an array.
	if len(srcs) == 1 && lhs.Index == nil {
		var only NodeID
		for n := range srcs {
			only = n
		}
		if !g.nodes[only].summary {
			m := g.edges[only]
			if m == nil {
				m = map[string]map[NodeID]bool{}
				g.edges[only] = m
			}
			set := map[NodeID]bool{}
			for t := range tgts {
				set[t] = true
			}
			m[lhs.Field] = set
			return g
		}
	}
	if rhsIsNull {
		return g // weak update with NULL adds nothing
	}
	for n := range srcs {
		for t := range tgts {
			g.addEdge(n, lhs.Field, t)
		}
	}
	return g
}

// havocCall models an opaque call: everything reachable from pointer
// arguments may be rewired arbitrarily, so reachable nodes gain edges
// to their type summaries.
func (a *Analysis) havocCall(g *Graph, call *lang.CallExpr) *Graph {
	var roots []NodeID
	for _, arg := range call.Args {
		for n := range a.targets(g, arg) {
			roots = append(roots, n)
		}
	}
	seen := map[NodeID]bool{}
	for len(roots) > 0 {
		n := roots[len(roots)-1]
		roots = roots[:len(roots)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		decl := a.prog.Universe.Decl(g.nodes[n].typ)
		if decl != nil {
			for _, pf := range decl.Pointers {
				g.addEdge(n, pf.Name, a.typeSummary(g, pf.Type))
			}
		}
		if m, ok := g.edges[n]; ok {
			for _, set := range m {
				for to := range set {
					roots = append(roots, to)
				}
			}
		}
	}
	return g
}

// ---------------------------------------------------------------------------
// Queries

// MayRevisit reports whether, at the fixed point of the loopIndex-th
// while loop of fn, following `field` repeatedly from variable v may
// visit the same abstract node twice — i.e. the storage graph cannot
// prove the traversal acyclic.
func (a *Analysis) MayRevisit(fnName string, loopIndex int, v, field string) (bool, error) {
	fn := a.prog.Func(fnName)
	if fn == nil {
		return true, fmt.Errorf("klimit: no function %q", fnName)
	}
	if _, err := a.AnalyzeFunc(fnName); err != nil {
		return true, err
	}
	var loop *lang.WhileStmt
	count := 0
	lang.Walk(fn.Body, func(s lang.Stmt) bool {
		if w, ok := s.(*lang.WhileStmt); ok {
			if count == loopIndex {
				loop = w
				return false
			}
			count++
		}
		return true
	})
	if loop == nil {
		return true, fmt.Errorf("klimit: %s has no loop #%d", fnName, loopIndex)
	}
	g := a.graphs[lang.Stmt(loop)]
	if g == nil {
		return true, nil
	}
	start, ok := g.env[v]
	if !ok {
		return true, nil
	}
	// A traversal may revisit iff some node reachable via field-edges
	// lies on a field-cycle, or a summary node is reached (a summary
	// stands for many nodes, any of which may repeat).
	reach := map[NodeID]bool{}
	var stack []NodeID
	for n := range start {
		stack = append(stack, n)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[n] {
			continue
		}
		reach[n] = true
		if g.nodes[n].summary {
			return true, nil
		}
		if m, ok := g.edges[n]; ok {
			for to := range m[field] {
				stack = append(stack, to)
			}
		}
	}
	// Cycle detection restricted to field-edges within reach.
	color := map[NodeID]int{} // 0 white, 1 grey, 2 black
	var dfs func(n NodeID) bool
	dfs = func(n NodeID) bool {
		color[n] = 1
		if m, ok := g.edges[n]; ok {
			for to := range m[field] {
				if !reach[to] {
					continue
				}
				switch color[to] {
				case 1:
					return true
				case 0:
					if dfs(to) {
						return true
					}
				}
			}
		}
		color[n] = 2
		return false
	}
	for n := range reach {
		if color[n] == 0 && dfs(n) {
			return true, nil
		}
	}
	return false, nil
}

// Verdict mirrors the conservative baseline's report.
type Verdict struct {
	Func           string
	LoopIndex      int
	Parallelizable bool
	Reason         string
}

// String renders the verdict.
func (v *Verdict) String() string {
	s := "NOT PARALLELIZABLE"
	if v.Parallelizable {
		s = "PARALLELIZABLE"
	}
	return fmt.Sprintf("[k-limited] %s loop #%d: %s (%s)", v.Func, v.LoopIndex, s, v.Reason)
}

// LoopParallelizable gives the k-limited verdict for a canonical
// pointer-chasing loop: parallelizable only if the storage graph proves
// the traversal revisit-free. (Field-level write/read conflicts are
// granted to the baseline for free — shape is what it cannot do.)
func (a *Analysis) LoopParallelizable(fnName string, loopIndex int) (*Verdict, error) {
	fn := a.prog.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("klimit: no function %q", fnName)
	}
	var loop *lang.WhileStmt
	count := 0
	lang.Walk(fn.Body, func(s lang.Stmt) bool {
		if w, ok := s.(*lang.WhileStmt); ok {
			if count == loopIndex {
				loop = w
				return false
			}
			count++
		}
		return true
	})
	if loop == nil {
		return nil, fmt.Errorf("klimit: %s has no loop #%d", fnName, loopIndex)
	}
	ind, field, ok := canonicalLoop(loop)
	if !ok {
		return &Verdict{Func: fnName, LoopIndex: loopIndex,
			Reason: "not a canonical pointer-chasing loop"}, nil
	}
	revisit, err := a.MayRevisit(fnName, loopIndex, ind, field)
	if err != nil {
		return nil, err
	}
	if revisit {
		return &Verdict{Func: fnName, LoopIndex: loopIndex,
			Reason: fmt.Sprintf("storage graph cannot prove %s-traversal acyclic (summary nodes / folded cycles)", field)}, nil
	}
	return &Verdict{Func: fnName, LoopIndex: loopIndex, Parallelizable: true,
		Reason: "storage graph proves the traversal acyclic"}, nil
}

// canonicalLoop recognizes "while p != NULL { ...; p = p->f }".
func canonicalLoop(loop *lang.WhileStmt) (ind, field string, ok bool) {
	be, isBin := loop.Cond.(*lang.BinExpr)
	if !isBin || be.Op != lang.NEQ {
		return "", "", false
	}
	if id, isID := be.X.(*lang.Ident); isID {
		if _, isNull := be.Y.(*lang.NullLit); isNull {
			ind = id.Name
		}
	}
	if id, isID := be.Y.(*lang.Ident); isID && ind == "" {
		if _, isNull := be.X.(*lang.NullLit); isNull {
			ind = id.Name
		}
	}
	if ind == "" || len(loop.Body.Stmts) == 0 {
		return "", "", false
	}
	as, isAssign := loop.Body.Stmts[len(loop.Body.Stmts)-1].(*lang.AssignStmt)
	if !isAssign {
		return "", "", false
	}
	lhs, isID := as.LHS.(*lang.Ident)
	if !isID || lhs.Name != ind {
		return "", "", false
	}
	fe, isField := as.RHS.(*lang.FieldExpr)
	if !isField || fe.Base() == nil || fe.Base().Name != ind {
		return "", "", false
	}
	return ind, fe.Field, true
}
