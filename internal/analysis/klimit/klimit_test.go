package klimit

import (
	"strings"
	"testing"

	"repro/internal/adds"
	"repro/internal/lang"
)

const scaleSrc = adds.OneWayListSrc + `
procedure scale(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    p->data = p->data * c;
    p = p->next;
  }
}`

// TestParamListMayRevisit reproduces the paper's §2.1 criticism: for a
// list arriving through a parameter, the storage graph is all summary
// nodes, so the traversal cannot be proven acyclic — even though the
// ADDS-driven analysis proves it trivially.
func TestParamListMayRevisit(t *testing.T) {
	prog := lang.MustParse(scaleSrc)
	a := New(prog, DefaultK)
	revisit, err := a.MayRevisit("scale", 0, "p", "next")
	if err != nil {
		t.Fatal(err)
	}
	if !revisit {
		t.Error("k-limited analysis must fail on a parameter list (summary nodes)")
	}
	v, err := a.LoopParallelizable("scale", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Parallelizable {
		t.Errorf("verdict should be negative: %s", v)
	}
	if !strings.Contains(v.String(), "cannot prove") {
		t.Errorf("reason: %s", v)
	}
}

// TestLoopBuiltListFoldsToCycle: a list built in a loop folds its
// allocation site into one abstract node whose next-edge points at
// itself — the spurious cycle of the k-limited abstraction.
func TestLoopBuiltListFoldsToCycle(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure f(int n) {
  var OneWayList *head = NULL;
  var int i = 0;
  while i < n {
    var OneWayList *node = new OneWayList;
    node->next = head;
    head = node;
    i = i + 1;
  }
  var OneWayList *p = head;
  while p != NULL {
    p->data = 0;
    p = p->next;
  }
}`
	prog := lang.MustParse(src)
	a := New(prog, DefaultK)
	revisit, err := a.MayRevisit("f", 1, "p", "next")
	if err != nil {
		t.Fatal(err)
	}
	if !revisit {
		t.Error("allocation-site folding must introduce a spurious next-cycle")
	}
}

// TestStraightLineProvable: with at most K distinct allocations the
// storage graph is exact and the traversal is provably acyclic — the
// narrow regime where k-limiting works.
func TestStraightLineProvable(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure f() {
  var OneWayList *a = new OneWayList;
  var OneWayList *b = new OneWayList;
  a->next = b;
  var OneWayList *p = a;
  while p != NULL {
    p->data = 1;
    p = p->next;
  }
}`
	prog := lang.MustParse(src)
	a := New(prog, 2)
	revisit, err := a.MayRevisit("f", 0, "p", "next")
	if err != nil {
		t.Fatal(err)
	}
	if revisit {
		t.Error("two distinct allocations within k must be provably acyclic")
	}
	v, _ := a.LoopParallelizable("f", 0)
	if !v.Parallelizable {
		t.Errorf("verdict: %s", v)
	}
}

// TestTrueCycleDetected: an explicitly closed cycle is (correctly)
// flagged.
func TestTrueCycleDetected(t *testing.T) {
	src := adds.ListNodeSrc + `
procedure f() {
  var ListNode *a = new ListNode;
  var ListNode *b = new ListNode;
  a->next = b;
  b->next = a;
  var ListNode *p = a;
  while p != NULL {
    p->coef = 1;
    p = p->next;
  }
}`
	prog := lang.MustParse(src)
	a := New(prog, 4)
	revisit, err := a.MayRevisit("f", 0, "p", "next")
	if err != nil {
		t.Fatal(err)
	}
	if !revisit {
		t.Error("a real cycle must be detected")
	}
}

// TestHavocCall: calling an opaque function over a node reverts it to
// summary-land.
func TestHavocCall(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure opaque(OneWayList *x) {
  x->next = x;
}
procedure f() {
  var OneWayList *a = new OneWayList;
  var OneWayList *b = new OneWayList;
  a->next = b;
  opaque(a);
  var OneWayList *p = a;
  while p != NULL {
    p->data = 1;
    p = p->next;
  }
}`
	prog := lang.MustParse(src)
	a := New(prog, 2)
	revisit, err := a.MayRevisit("f", 0, "p", "next")
	if err != nil {
		t.Fatal(err)
	}
	if !revisit {
		t.Error("an opaque call must havoc the reachable subgraph")
	}
}

func TestNonCanonicalLoop(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure f(int n) {
  var int i = 0;
  while i < n {
    i = i + 1;
  }
}`
	prog := lang.MustParse(src)
	a := New(prog, 2)
	v, err := a.LoopParallelizable("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Parallelizable || !strings.Contains(v.Reason, "not a canonical") {
		t.Errorf("verdict: %s", v)
	}
}

func TestErrors(t *testing.T) {
	prog := lang.MustParse(scaleSrc)
	a := New(prog, 0) // k<1 falls back to default
	if a.K != DefaultK {
		t.Errorf("K = %d", a.K)
	}
	if _, err := a.LoopParallelizable("nosuch", 0); err == nil {
		t.Error("unknown function must error")
	}
	if _, err := a.LoopParallelizable("scale", 9); err == nil {
		t.Error("unknown loop must error")
	}
	if _, err := a.MayRevisit("nosuch", 0, "p", "next"); err == nil {
		t.Error("unknown function must error")
	}
}
