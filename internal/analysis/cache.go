package analysis

import (
	"sort"

	"repro/internal/lang"
)

// Cache memoizes per-function path-matrix analysis over one evolving
// program, so a planner that rewrites one function at a time pays
// re-analysis cost proportional to the functions it touched, not to the
// whole program.
//
// # Why reusing an untouched function's result is safe
//
// analyzeFunc is a pure function of three inputs: the function's own
// body, the universe-wide field table, and — for each call site — the
// callee's closed callEffects (which pointer fields the call may store)
// and exit-violation summary. The field table derives from the ADDS
// universe, which no rewrite changes. So the only way a rewrite of
// function G can change the analysis of an untouched function F is by
// changing a summary F consumes, i.e. the closed effects or exit
// violations of some function on a call path from F.
//
// Update re-derives the direct effects of every touched function, then
// propagates along the reverse call graph exactly as far as a closed
// summary actually changes, and re-analyzes that cascade set to a fixed
// point — the same fixed point AnalyzeAll reaches, because analyzeFunc
// is deterministic and both iterate until the consumed summaries
// stabilize. A FuncResult for a function outside the cascade set is
// therefore the result a full re-analysis would produce, including its
// Stmt-keyed maps: untouched functions are never cloned, so their
// statement identities persist across rewrites.
//
// (Edge IDs minted by the shared counter differ from a fresh run's, but
// an ID is only ever compared for equality against IDs minted in the
// same function analysis, where allocation order is deterministic — so
// every join and fixed-point test sees the same answers and the
// resulting facts are identical.)
type Cache struct {
	an *Analyzer
	// direct holds each function's own (unclosed) effects, so Update can
	// detect whether a rewrite changed them at all.
	direct map[string]*callEffects
}

// NewCache analyzes the whole program once and returns the memoized
// analyzer state. The program must not be mutated except through the
// touched-function protocol of Update.
func NewCache(prog *lang.Program) (*Cache, error) {
	an := New(prog)
	if _, err := an.AnalyzeAll(); err != nil {
		return nil, err
	}
	c := &Cache{an: an, direct: make(map[string]*callEffects, len(prog.Funcs))}
	for _, f := range prog.Funcs {
		c.direct[f.Name], _ = directCallEffects(f)
	}
	return c, nil
}

// Program returns the program the cache analyzes.
func (c *Cache) Program() *lang.Program { return c.an.prog }

// Result returns the current combined analysis result. The maps inside
// are live views of the cache; they are refreshed in place by Update.
func (c *Cache) Result() *Result {
	return &Result{Program: c.an, Funcs: c.an.results}
}

// Func returns the memoized analysis of one function, or nil.
func (c *Cache) Func(name string) *FuncResult {
	return c.an.results[name]
}

// Update re-analyzes after an in-place rewrite that touched exactly the
// named functions (rewritten bodies and newly appended functions). It
// returns the sorted names of every function actually re-analyzed — the
// touched set plus the cascade of callers whose consumed summaries
// changed.
func (c *Cache) Update(touched ...string) ([]string, error) {
	prog := c.an.prog

	// 1. Refresh direct effects and the call graph for the touched
	// functions. Callers of a function whose call-visible signature
	// facts changed (new function, removed function, returnsPointer
	// flip) must re-analyze even if no store set moves.
	dirty := map[string]bool{}
	signatureChanged := map[string]bool{}
	for _, name := range touched {
		f := prog.Func(name)
		if f == nil {
			delete(c.direct, name)
			delete(c.an.effects, name)
			delete(c.an.callees, name)
			delete(c.an.results, name)
			delete(c.an.exitViols, name)
			signatureChanged[name] = true
			continue
		}
		dirty[name] = true
		nd, callees := directCallEffects(f)
		old := c.direct[name]
		c.direct[name] = nd
		c.an.callees[name] = callees
		if old == nil || old.returnsPointer != nd.returnsPointer {
			signatureChanged[name] = true
		}
		if c.an.effects[name] == nil {
			c.an.effects[name] = &callEffects{storesFields: map[string]bool{}}
		}
	}

	callers := c.reverseCalls()

	// 2. Re-close effect summaries along reverse call edges, only as far
	// as a closed set actually changes. Each processed function is
	// rebuilt from scratch (direct ∪ closed callees) because a rewrite
	// may have shrunk its set — the accumulate-only whole-program
	// closure cannot express that.
	var work []string
	inWork := map[string]bool{}
	push := func(name string) {
		if !inWork[name] && c.an.effects[name] != nil {
			work = append(work, name)
			inWork[name] = true
		}
	}
	for _, name := range touched {
		push(name)
	}
	for len(work) > 0 {
		name := work[0]
		work = work[1:]
		inWork[name] = false
		ce := c.an.effects[name]
		d := c.direct[name]
		if ce == nil || d == nil {
			continue
		}
		before := ce.storesFields
		rebuilt := copyFieldSet(d.storesFields)
		for callee := range c.an.callees[name] {
			if sub := c.an.effects[callee]; sub != nil {
				for f := range sub.storesFields {
					rebuilt[f] = true
				}
			}
		}
		ce.storesFields = rebuilt
		ce.returnsPointer = d.returnsPointer
		if sameFieldSet(before, rebuilt) {
			continue
		}
		for _, caller := range callers[name] {
			dirty[caller] = true
			push(caller)
		}
	}
	for name := range signatureChanged {
		for _, caller := range callers[name] {
			dirty[caller] = true
		}
	}

	// 3. Re-run the dataflow analysis over the dirty set, cascading to
	// callers whenever an exit-violation summary changes, until stable —
	// the same fixed point AnalyzeAll iterates to, restricted to the
	// functions whose inputs could have changed.
	analyzed := map[string]bool{}
	for round := 0; round < len(prog.Funcs)+2; round++ {
		changed := false
		for _, f := range prog.Funcs {
			if !dirty[f.Name] {
				continue
			}
			prev, had := c.an.exitViols[f.Name]
			fr, err := c.an.analyzeFunc(f)
			if err != nil {
				return nil, err
			}
			analyzed[f.Name] = true
			c.an.results[f.Name] = fr
			now := fr.Exit.Violations
			c.an.exitViols[f.Name] = now
			if had && sameViolationKeys(prev, now) {
				continue
			}
			changed = true
			for _, caller := range callers[f.Name] {
				if !dirty[caller] {
					dirty[caller] = true
				}
			}
		}
		if !changed {
			break
		}
	}

	out := make([]string, 0, len(analyzed))
	for name := range analyzed {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// reverseCalls inverts the caller→callee graph (callers listed in
// sorted order for determinism).
func (c *Cache) reverseCalls() map[string][]string {
	rev := map[string][]string{}
	names := make([]string, 0, len(c.an.callees))
	for caller := range c.an.callees {
		names = append(names, caller)
	}
	sort.Strings(names)
	for _, caller := range names {
		for callee := range c.an.callees[caller] {
			rev[callee] = append(rev[callee], caller)
		}
	}
	return rev
}

func sameFieldSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func copyFieldSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
