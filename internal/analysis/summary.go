package analysis

import (
	"repro/internal/adds"
	"repro/internal/lang"
)

// callEffects is the syntactic, transitively-closed effect summary the
// call rule consumes: which pointer fields a function (or anything it
// calls) may store to.
type callEffects struct {
	// storesFields holds pointer field names the function may overwrite,
	// directly or through callees.
	storesFields map[string]bool
	// returnsPointer reports whether the function returns a pointer.
	returnsPointer bool
}

// directCallEffects computes one function's own (uncalled) effect
// summary plus the set of functions it calls.
func directCallEffects(f *lang.FuncDecl) (*callEffects, map[string]bool) {
	eff := &callEffects{storesFields: map[string]bool{}}
	_, eff.returnsPointer = lang.IsPointer(f.Result)
	callees := map[string]bool{}
	lang.Walk(f.Body, func(s lang.Stmt) bool {
		if as, ok := s.(*lang.AssignStmt); ok {
			if fe, ok := as.LHS.(*lang.FieldExpr); ok {
				if _, isPtr := lang.IsPointer(fe.Type()); isPtr {
					eff.storesFields[fe.Field] = true
				}
			}
		}
		lang.WalkExprs(s, func(e lang.Expr) {
			if call, ok := e.(*lang.CallExpr); ok {
				if lang.Builtins[call.Func] == nil {
					callees[call.Func] = true
				}
			}
		})
		return true
	})
	return eff, callees
}

// mergeCalleeStores folds every callee's store set into its callers,
// reporting whether anything grew (one step of the transitive closure;
// recursion converges because the field universe is finite).
func mergeCalleeStores(out map[string]*callEffects, calls map[string]map[string]bool) bool {
	changed := false
	for caller, callees := range calls {
		ce := out[caller]
		for callee := range callees {
			sub, ok := out[callee]
			if !ok {
				continue
			}
			for f := range sub.storesFields {
				if !ce.storesFields[f] {
					ce.storesFields[f] = true
					changed = true
				}
			}
		}
	}
	return changed
}

// computeCallEffects builds effect summaries for every function by
// iterating direct effects through the call graph until stable. It also
// returns the caller→callee graph so incremental updates can cascade
// along reverse edges.
func computeCallEffects(prog *lang.Program) (map[string]*callEffects, map[string]map[string]bool) {
	out := make(map[string]*callEffects, len(prog.Funcs))
	calls := make(map[string]map[string]bool, len(prog.Funcs))
	for _, f := range prog.Funcs {
		out[f.Name], calls[f.Name] = directCallEffects(f)
	}
	for mergeCalleeStores(out, calls) {
	}
	return out, calls
}

// StoresPointerFields exposes, for other packages, whether fn may write
// any pointer field, and which.
func (r *Result) StoresPointerFields(fn string) []string {
	eff := r.Program.effects[fn]
	if eff == nil {
		return nil
	}
	var out []string
	for f := range eff.storesFields {
		out = append(out, f)
	}
	return out
}

// forwardAlongOneDim reports whether all the named fields are
// unambiguously declared with one common (non-Unknown) direction along
// one common dimension, so paths over them are acyclic and compose into
// acyclic paths. Both forward-only and backward-only traversals
// qualify (the paper's two-way list: next-only or prev-only never
// revisits).
func (a *Analyzer) forwardAlongOneDim(fields []string) bool {
	dim := ""
	dir := adds.Unknown
	for _, f := range fields {
		fi := a.fields[f]
		if fi == nil || fi.Ambiguous || fi.Dir == adds.Unknown {
			return false
		}
		if dim == "" {
			dim, dir = fi.Dim, fi.Dir
		} else if fi.Dim != dim || fi.Dir != dir {
			return false
		}
	}
	return dim != ""
}
