package analysis

import (
	"testing"

	"repro/internal/adds"
	"repro/internal/lang"
	"repro/internal/pathmatrix"
)

// TestIndependenceDisproof exercises the §3.1.3 claim for the 2-D range
// tree: "any node that can be accessed by a forward traversal along
// sub, cannot be accessed by a forward traversal along down or along
// leaves". Even with possibly-aliased bases, a sub-loaded handle can
// never alias a down- or leaves-loaded handle.
func TestIndependenceDisproof(t *testing.T) {
	src := adds.TwoDRangeTreeSrc + `
procedure f(TwoDRangeTree *a, TwoDRangeTree *b) {
  var TwoDRangeTree *s = a->subtree;
  var TwoDRangeTree *d = b->left;
  var TwoDRangeTree *l = b->next;
  print(1);
}
`
	prog, fr := analyzeOne(t, src, "f")
	fn := prog.Func("f")
	last := fn.Body.Stmts[len(fn.Body.Stmts)-1]
	st := fr.Before[last]

	if got := st.PM.Get("s", "d").Alias; got != pathmatrix.NoAlias {
		t.Errorf("sub-loaded vs down-loaded = %v, want NoAlias (sub||down)\n%s", got, st.PM)
	}
	if got := st.PM.Get("s", "l").Alias; got != pathmatrix.NoAlias {
		t.Errorf("sub-loaded vs leaves-loaded = %v, want NoAlias (sub||leaves)\n%s", got, st.PM)
	}
	// down and leaves are dependent: d and l may alias (both b-derived
	// one step along dependent dimensions — d = b->left could be the
	// same leaf l = b->next points at).
	if got := st.PM.Get("d", "l").Alias; got == pathmatrix.NoAlias {
		t.Errorf("down-loaded vs leaves-loaded must stay possible (dependent dims)\n%s", st.PM)
	}
}

// TestIndependenceSurvivesCopy: provenance flows through plain copies.
func TestIndependenceSurvivesCopy(t *testing.T) {
	src := adds.TwoDRangeTreeSrc + `
procedure f(TwoDRangeTree *a, TwoDRangeTree *b) {
  var TwoDRangeTree *s = a->subtree;
  var TwoDRangeTree *s2 = s;
  var TwoDRangeTree *d = b->left;
  print(1);
}
`
	prog, fr := analyzeOne(t, src, "f")
	fn := prog.Func("f")
	last := fn.Body.Stmts[len(fn.Body.Stmts)-1]
	st := fr.Before[last]
	if got := st.PM.Get("s2", "d").Alias; got != pathmatrix.NoAlias {
		t.Errorf("copied sub-handle vs down-loaded = %v, want NoAlias\n%s", got, st.PM)
	}
}

// TestIndependenceLostAtJoin: provenance that differs across branches
// is dropped — no unsound disproof after a join.
func TestIndependenceLostAtJoin(t *testing.T) {
	src := adds.TwoDRangeTreeSrc + `
procedure f(TwoDRangeTree *a, TwoDRangeTree *b, bool c) {
  var TwoDRangeTree *x = NULL;
  if c {
    x = a->subtree;
  } else {
    x = a->left;
  }
  var TwoDRangeTree *d = b->left;
  print(1);
}
`
	prog, fr := analyzeOne(t, src, "f")
	fn := prog.Func("f")
	last := fn.Body.Stmts[len(fn.Body.Stmts)-1]
	st := fr.Before[last]
	// x may be down-loaded, so independence from down must NOT apply.
	if got := st.PM.Get("x", "d").Alias; got == pathmatrix.NoAlias {
		t.Errorf("mixed-provenance handle must stay possible vs down-loaded\n%s", st.PM)
	}
}

// TestOrthListRowDisjointness: two rows reached from provably distinct
// row heads stay distinct after parallel across-traversals.
func TestOrthListRowDisjointness(t *testing.T) {
	src := adds.OrthListSrc + `
procedure f(OrthList *grid) {
  var OrthList *r1 = grid->down;
  var OrthList *r2 = r1->down;
  var OrthList *a = r1->across;
  var OrthList *b = r2->across;
  print(1);
}
`
	prog, fr := analyzeOne(t, src, "f")
	fn := prog.Func("f")
	last := fn.Body.Stmts[len(fn.Body.Stmts)-1]
	st := fr.Before[last]
	if got := st.PM.Get("r1", "r2").Alias; got != pathmatrix.NoAlias {
		t.Errorf("successive down-loads must be distinct, got %v", got)
	}
	// a and b hang off distinct rows via a uniquely-forward field.
	if got := st.PM.Get("a", "b").Alias; got != pathmatrix.NoAlias {
		t.Errorf("across-children of distinct rows must be distinct, got %v\n%s", got, st.PM)
	}
}

// TestOrthListLoopParallelizable: scaling one row's elements is a
// parallelizable traversal along across.
func TestOrthListRowScaleLoop(t *testing.T) {
	src := adds.OrthListSrc + `
procedure scalerow(OrthList *row, int c) {
  var OrthList *p = row;
  while p != NULL {
    p->data = p->data * c;
    p = p->across;
  }
}
`
	prog, fr := analyzeOne(t, src, "scalerow")
	fn := prog.Func("scalerow")
	loop, err := FindLoop(fn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.InductionStrictlyAdvances(loop, "p") {
		t.Error("across-traversal must strictly advance")
	}
}

// TestTwoWayListBothDirections: forward and backward traversals each
// advance; mixing directions does not.
func TestTwoWayListBothDirections(t *testing.T) {
	src := adds.TwoWayListSrc + `
procedure fwd(TwoWayList *h) {
  var TwoWayList *p = h;
  while p != NULL {
    p->data = 1;
    p = p->next;
  }
}
procedure bwd(TwoWayList *tl) {
  var TwoWayList *p = tl;
  while p != NULL {
    p->data = 1;
    p = p->prev;
  }
}
procedure zigzag(TwoWayList *h) {
  var TwoWayList *p = h;
  while p != NULL {
    var TwoWayList *q = p->next;
    p = q->prev;   // back where we started: must not "advance"
  }
}
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{"fwd", "bwd"} {
		fr, err := Analyze(prog, fn)
		if err != nil {
			t.Fatal(err)
		}
		loop, _ := FindLoop(prog.Func(fn), 0)
		if !fr.InductionStrictlyAdvances(loop, "p") {
			t.Errorf("%s traversal must strictly advance", fn)
		}
	}
	fr, err := Analyze(prog, "zigzag")
	if err != nil {
		t.Fatal(err)
	}
	loop, _ := FindLoop(prog.Func("zigzag"), 0)
	if fr.InductionStrictlyAdvances(loop, "p") {
		t.Error("zigzag must not be proven to advance (it revisits p)")
	}
}

// TestBackwardAdvanceOnBackwardLoop: bwd uses prev, which is declared
// backward (acyclic) but not unique; the induction fact must still hold
// through p' paths... and indeed prev-only traversal is acyclic, so the
// p'→p path over prev suffices.
func TestBackwardFieldPathNoAlias(t *testing.T) {
	src := adds.TwoWayListSrc + `
procedure f(TwoWayList *a) {
  var TwoWayList *x = a->prev;
  var TwoWayList *y = x->prev;
  print(1);
}
`
	prog, fr := analyzeOne(t, src, "f")
	fn := prog.Func("f")
	last := fn.Body.Stmts[len(fn.Body.Stmts)-1]
	st := fr.Before[last]
	if st.PM.Get("a", "x").Alias != pathmatrix.NoAlias {
		t.Error("a vs a->prev distinct (acyclic backward)")
	}
	if st.PM.Get("x", "y").Alias != pathmatrix.NoAlias {
		t.Error("x vs x->prev distinct")
	}
	// a vs y: two backward steps; acyclicity of prev gives distinctness
	// only through the recorded path — conservatively Possible is also
	// acceptable, but never a false NoAlias-with-path claim.
	e := st.PM.Get("a", "y")
	if e.Alias == pathmatrix.NoAlias && !e.HasPath() {
		t.Error("a vs y NoAlias without a justifying path")
	}
}
