package analysis

import (
	"strings"
	"testing"

	"repro/internal/adds"
	"repro/internal/lang"
)

func TestFindLoopAndAssignErrors(t *testing.T) {
	prog := lang.MustParse(adds.OneWayListSrc + `
procedure f(OneWayList *p) {
  p->data = 1;
}`)
	fn := prog.Func("f")
	if _, err := FindLoop(fn, 0); err == nil {
		t.Error("no loops: FindLoop must error")
	}
	if _, err := FindAssign(fn, "q = q->next;"); err == nil {
		t.Error("missing assignment: FindAssign must error")
	}
	if _, err := FindAssign(fn, "p->data = 1;"); err != nil {
		t.Errorf("existing assignment not found: %v", err)
	}
}

func TestMayAliasAtConservativeFallbacks(t *testing.T) {
	prog := lang.MustParse(adds.OneWayListSrc + `
procedure f(OneWayList *a, OneWayList *b) {
  var OneWayList *n = new OneWayList;
  print(1);
}`)
	fr, err := Analyze(prog, "f")
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("f")
	last := fn.Body.Stmts[len(fn.Body.Stmts)-1]
	if !fr.MayAliasAt(last, "a", "b") {
		t.Error("possible aliases must answer true")
	}
	if fr.MayAliasAt(last, "n", "a") {
		t.Error("fresh node cannot alias a parameter")
	}
	// Unknown handle and unreached statement: conservative true.
	if !fr.MayAliasAt(last, "zz", "a") {
		t.Error("unknown handle must answer true")
	}
	fake := &lang.ReturnStmt{}
	if !fr.MayAliasAt(fake, "a", "b") {
		t.Error("unreached statement must answer true")
	}
	if fr.MatrixBefore(fake) != nil || fr.MatrixAfter(fake) != nil {
		t.Error("unreached statement has no matrices")
	}
}

func TestAnalyzeUnknownFunction(t *testing.T) {
	prog := lang.MustParse(adds.OneWayListSrc + `procedure f(OneWayList *p) { }`)
	if _, err := Analyze(prog, "nosuch"); err == nil || !strings.Contains(err.Error(), "no function") {
		t.Errorf("err = %v", err)
	}
}

func TestViolationKeyString(t *testing.T) {
	k := ViolationKey{Type: "Octree", Dim: "down", Kind: Sharing}
	if k.String() != "sharing of Octree along down" {
		t.Errorf("key = %q", k.String())
	}
	k2 := ViolationKey{Type: "List", Dim: "X", Kind: Cycle}
	if k2.String() != "cycle of List along X" {
		t.Errorf("key = %q", k2.String())
	}
}

func TestStoresPointerFieldsQuery(t *testing.T) {
	prog := lang.MustParse(adds.OneWayListSrc + `
procedure mut(OneWayList *p) {
  p->next = NULL;
}
procedure ro(OneWayList *p) {
  p->data = 1;
}`)
	res, err := New(prog).AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	if fields := res.StoresPointerFields("mut"); len(fields) != 1 || fields[0] != "next" {
		t.Errorf("mut stores = %v", fields)
	}
	if fields := res.StoresPointerFields("ro"); len(fields) != 0 {
		t.Errorf("ro stores = %v", fields)
	}
	if fields := res.StoresPointerFields("nosuch"); fields != nil {
		t.Errorf("unknown fn stores = %v", fields)
	}
}

// TestUninitializedPointerVar: a declared-but-uninitialized pointer is
// treated as NULL (aliases nothing).
func TestUninitializedPointerVar(t *testing.T) {
	prog := lang.MustParse(adds.OneWayListSrc + `
procedure f(OneWayList *a) {
  var OneWayList *p;
  print(1);
}`)
	fr, err := Analyze(prog, "f")
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("f")
	last := fn.Body.Stmts[len(fn.Body.Stmts)-1]
	if fr.MayAliasAt(last, "p", "a") {
		t.Error("uninitialized pointer aliases nothing")
	}
}

// TestScopedHandleRemoved: a block-local pointer disappears from the
// matrix after its block.
func TestScopedHandleRemoved(t *testing.T) {
	prog := lang.MustParse(adds.OneWayListSrc + `
procedure f(OneWayList *a, bool c) {
  if c {
    var OneWayList *tmp = a;
    tmp->data = 1;
  }
  print(1);
}`)
	fr, err := Analyze(prog, "f")
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.Func("f")
	last := fn.Body.Stmts[len(fn.Body.Stmts)-1]
	st := fr.Before[last]
	if st.PM.HasHandle("tmp") {
		t.Error("block-local handle must be removed at scope exit")
	}
}

// TestLoopBodyAlwaysReturns: a while whose body returns is analyzed
// without hanging and the loop runs at most once.
func TestLoopBodyAlwaysReturns(t *testing.T) {
	prog := lang.MustParse(adds.OneWayListSrc + `
function OneWayList * f(OneWayList *p) {
  while p != NULL {
    return p;
  }
  return NULL;
}`)
	fr, err := Analyze(prog, "f")
	if err != nil {
		t.Fatal(err)
	}
	if fr.Exit == nil {
		t.Fatal("no exit state")
	}
}
