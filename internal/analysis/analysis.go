// Package analysis implements the paper's general path matrix analysis
// (§3.3): a flow-sensitive dataflow analysis over PSL functions that
// computes a path matrix at every program point, guided by the ADDS
// declarations of the structures being manipulated.
//
// The analysis fulfills the paper's two roles:
//
//  1. Abstraction validation (§3.3.1) — shape-changing stores
//     (p->f = q) are checked against the declared shape; temporary
//     violations (sharing along a unique dimension, cycles along an
//     acyclic direction) are recorded, and cleared when a later store
//     destroys the witnessing edge.
//
//  2. Alias analysis (§3.3.2) — the matrices prove non-aliasing facts
//     (e.g. that head, p and p' in a list-scaling loop are never
//     aliases), which downstream packages (depend, transform) use to
//     license parallelizing transformations.
//
// Loops are analyzed to a fixed point with primed handles: for every
// pointer variable v assigned in a loop body, a handle v' tracks v's
// value in the previous iteration, exactly as the paper's matrices show.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/adds"
	"repro/internal/lang"
	"repro/internal/pathmatrix"
)

// ViolationKind classifies an abstraction violation.
type ViolationKind int

// Violation kinds.
const (
	// Sharing: a node acquired two in-edges along a dimension declared
	// uniquely forward.
	Sharing ViolationKind = iota
	// Cycle: an edge closed a cycle along a declared acyclic direction.
	Cycle
)

// String names the kind.
func (k ViolationKind) String() string {
	if k == Cycle {
		return "cycle"
	}
	return "sharing"
}

// ViolationKey identifies which declared property is broken.
type ViolationKey struct {
	Type string
	Dim  string
	Kind ViolationKind
}

// String renders "sharing of Octree along down".
func (k ViolationKey) String() string {
	return fmt.Sprintf("%s of %s along %s", k.Kind, k.Type, k.Dim)
}

// EdgeRef names a heap edge through a handle: the f-field of the node
// that Handle points to. It is how a violation remembers which edges
// witness it, so that a later store through the same field (of the same
// node, reached through any definite alias) clears the violation — the
// paper's "if another program statement fixes the relationship between
// these two fields, the entry is removed" (§3.3.1).
type EdgeRef struct {
	Handle string
	Field  string
	// Index is the index-expression text for pointer-array fields
	// ("q" in t->subtrees[q]); "" for plain fields, "?" when the
	// analysis cannot compare the index.
	Index string
}

// Violation is an active abstraction violation: the declared property
// does not currently hold, so transformations relying on it must not be
// applied (§3.3.1).
type Violation struct {
	Key ViolationKey
	// Refs are the edges whose existence demonstrates the violation.
	// Destroying any of them (by an overwriting store) clears the
	// violation. A ref whose handle is reassigned becomes untrackable
	// and is dropped; a violation with no refs left is permanent for
	// the rest of the function.
	Refs []EdgeRef
	Pos  lang.Pos
}

// State is the abstract state at a program point: the path matrix plus
// the set of active violations.
type State struct {
	PM         *pathmatrix.Matrix
	Violations map[ViolationKey]*Violation
	// Prov records, for handles whose current value was produced by a
	// forward load, the dimension it was loaded along and (while still
	// nameable) the handle it was loaded from. It feeds two disproofs:
	// independence (a node reached forward along an independent
	// dimension can never be the same node — §3.1.3's sub||down) and
	// distinct-parent uniqueness (children of provably different
	// parents along a uniquely-forward dimension are different).
	Prov map[string]Provenance
}

// Provenance describes how a handle's value was most recently produced.
type Provenance struct {
	// Dim is the dimension of the forward load.
	Dim string
	// Src names the base handle of the load, or "" once that handle
	// has been reassigned (the parent node is then no longer nameable).
	Src string
}

// NewState returns an empty state.
func NewState() *State {
	return &State{
		PM:         pathmatrix.New(),
		Violations: map[ViolationKey]*Violation{},
		Prov:       map[string]Provenance{},
	}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	ns := &State{
		PM:         s.PM.Clone(),
		Violations: make(map[ViolationKey]*Violation, len(s.Violations)),
		Prov:       make(map[string]Provenance, len(s.Prov)),
	}
	for k, v := range s.Violations {
		nv := *v
		nv.Refs = append([]EdgeRef(nil), v.Refs...)
		ns.Violations[k] = &nv
	}
	for k, v := range s.Prov {
		ns.Prov[k] = v
	}
	return ns
}

// Valid reports whether the ADDS property (typ, dim) currently holds:
// no active violation mentions it.
func (s *State) Valid(typ, dim string) bool {
	for k := range s.Violations {
		if k.Type == typ && k.Dim == dim {
			return false
		}
	}
	return true
}

// ViolationKeys returns the active violation keys, sorted, for reports.
func (s *State) ViolationKeys() []ViolationKey {
	keys := make([]ViolationKey, 0, len(s.Violations))
	for k := range s.Violations {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i].String() < keys[j].String()
	})
	return keys
}

// ClearProvAlongDim drops provenance facts whose dimension is dim: a
// store through any field of that dimension may have destroyed the
// in-edge the fact was based on.
func (s *State) ClearProvAlongDim(dim string) {
	for k, v := range s.Prov {
		if v.Dim == dim {
			delete(s.Prov, k)
		}
	}
}

// fixViolationsForStore clears violations witnessed by the f-edge (at
// index idx for array fields) of the node x points to: a store
// x->f = ... / x->f[idx] = ... definitely destroys that edge. pm is the
// matrix before the store (so definite aliases of x are still visible).
// Incomparable indices ("?") never match.
func (s *State) fixViolationsForStore(x, f, idx string, pm *pathmatrix.Matrix) {
	if idx == "?" {
		return
	}
	for k, v := range s.Violations {
		for _, r := range v.Refs {
			if r.Field != f || r.Index != idx {
				continue
			}
			if r.Handle == x || pm.Get(x, r.Handle).Alias == pathmatrix.DefiniteAlias {
				delete(s.Violations, k)
				break
			}
		}
	}
}

// invalidateIndexVar records that scalar variable name was reassigned:
// exact descriptors and violation references indexed by it become
// stale. Descriptors are dropped; references become unfixable ("?").
func (s *State) invalidateIndexVar(name string) {
	for _, a := range s.PM.Handles() {
		for _, b := range s.PM.Handles() {
			s.PM.Update(a, b, func(e *pathmatrix.Entry) {
				e.RemoveExactsIndexedBy(name)
			})
		}
	}
	for _, v := range s.Violations {
		for i := range v.Refs {
			if v.Refs[i].Index == name {
				v.Refs[i].Index = "?"
			}
		}
	}
}

// Retarget records that handle h is about to take a new value: edge
// references through h transfer to a definite alias if one exists,
// otherwise they are dropped (the violation then persists untrackably),
// and provenance facts naming h as their load source lose the name.
func (s *State) Retarget(h string, pm *pathmatrix.Matrix) {
	for k, v := range s.Prov {
		if v.Src == h {
			v.Src = ""
			s.Prov[k] = v
		}
	}
	if len(s.Violations) == 0 {
		return
	}
	var alias string
	for _, other := range pm.Aliases(h, false) {
		alias = other
		break
	}
	for _, v := range s.Violations {
		out := v.Refs[:0]
		for _, r := range v.Refs {
			if r.Handle == h {
				if alias == "" {
					continue // untrackable: drop the ref
				}
				r.Handle = alias
			}
			out = append(out, r)
		}
		v.Refs = out
	}
}

// joinStates joins matrices and unions violations (a violation active on
// either path must be assumed active after the join).
func joinStates(a, b *State) *State {
	out := &State{
		PM:         pathmatrix.Join(a.PM, b.PM),
		Violations: make(map[ViolationKey]*Violation, len(a.Violations)+len(b.Violations)),
		Prov:       make(map[string]Provenance, len(a.Prov)),
	}
	for k, v := range a.Prov {
		bv, ok := b.Prov[k]
		if !ok || bv.Dim != v.Dim {
			continue
		}
		if bv.Src != v.Src {
			v.Src = ""
		}
		out.Prov[k] = v
	}
	for k, v := range a.Violations {
		nv := *v
		nv.Refs = append([]EdgeRef(nil), v.Refs...)
		out.Violations[k] = &nv
	}
	for k, v := range b.Violations {
		if prev, ok := out.Violations[k]; ok {
			// Merge references: fixing any referenced edge clears.
			seen := make(map[EdgeRef]bool, len(prev.Refs))
			for _, r := range prev.Refs {
				seen[r] = true
			}
			for _, r := range v.Refs {
				if !seen[r] {
					prev.Refs = append(prev.Refs, r)
				}
			}
			continue
		}
		nv := *v
		nv.Refs = append([]EdgeRef(nil), v.Refs...)
		out.Violations[k] = &nv
	}
	return out
}

// equalStates is the fixed-point test: matrices equal, the same
// violation keys active, and the same provenance facts.
func equalStates(a, b *State) bool {
	if !pathmatrix.Equal(a.PM, b.PM) {
		return false
	}
	if len(a.Violations) != len(b.Violations) {
		return false
	}
	for k := range a.Violations {
		if _, ok := b.Violations[k]; !ok {
			return false
		}
	}
	if len(a.Prov) != len(b.Prov) {
		return false
	}
	for k, v := range a.Prov {
		if b.Prov[k] != v {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Field information

// fieldInfo is the universe-wide view of a pointer field name. The
// analysis records paths as bare field names, so a field name that is
// declared differently by two record types is marked ambiguous and
// treated conservatively.
type fieldInfo struct {
	Dim       string
	Dir       adds.Direction
	Unique    bool
	Count     int
	Owner     string
	Ambiguous bool
}

func buildFieldInfo(u *adds.Universe) map[string]*fieldInfo {
	out := make(map[string]*fieldInfo)
	for _, tname := range u.Types() {
		d := u.Decl(tname)
		for _, f := range d.Pointers {
			if prev, ok := out[f.Name]; ok {
				if prev.Dim != f.Dim || prev.Dir != f.Dir || prev.Unique != f.Unique {
					prev.Ambiguous = true
				}
				continue
			}
			out[f.Name] = &fieldInfo{
				Dim: f.Dim, Dir: f.Dir, Unique: f.Unique,
				Count: f.Count, Owner: tname,
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Analyzer

// Result holds the per-program analysis output.
type Result struct {
	Program *Analyzer
	// Funcs maps each function to its analysis.
	Funcs map[string]*FuncResult
}

// FuncResult is the analysis of one function.
type FuncResult struct {
	Name string
	// Entry is the assumed state at function entry (parameters pairwise
	// possible aliases).
	Entry *State
	// Exit is the state at function exit (join over returns and
	// fall-through).
	Exit *State
	// Before and After record the state around every statement.
	Before map[lang.Stmt]*State
	After  map[lang.Stmt]*State
	// LoopInvariant records the fixed-point state at each loop head.
	LoopInvariant map[lang.Stmt]*State
	// LoopBodyExit records the fixed-point state at the end of each
	// loop body, before the back edge rebinds the primed handles. This
	// is where the paper's p'-vs-p facts live.
	LoopBodyExit map[lang.Stmt]*State

	an *Analyzer
}

// Analyzer runs general path matrix analysis over a program.
type Analyzer struct {
	prog    *lang.Program
	fields  map[string]*fieldInfo
	effects map[string]*callEffects
	// callees is the caller→callee graph underlying effects; Cache
	// updates cascade along its reverse edges.
	callees   map[string]map[string]bool
	edgeID    int
	results   map[string]*FuncResult
	exitViols map[string]map[ViolationKey]*Violation
	// MaxLoopIterations bounds loop fixed-point iteration as a safety
	// net; the lattice is finite so this should never be reached.
	MaxLoopIterations int
}

// New creates an analyzer for the program.
func New(prog *lang.Program) *Analyzer {
	effects, callees := computeCallEffects(prog)
	return &Analyzer{
		prog:              prog,
		fields:            buildFieldInfo(prog.Universe),
		effects:           effects,
		callees:           callees,
		results:           make(map[string]*FuncResult),
		exitViols:         make(map[string]map[ViolationKey]*Violation),
		MaxLoopIterations: 64,
	}
}

// AnalyzeAll analyzes every function and returns the combined result.
// Functions are analyzed on demand (callee violation summaries are
// consumed by callers), iterating until the violation summaries
// stabilize.
func (a *Analyzer) AnalyzeAll() (*Result, error) {
	// Iterate to a fixed point of exit-violation summaries: a callee
	// that ends with an active violation poisons its callers.
	for round := 0; round < len(a.prog.Funcs)+2; round++ {
		changed := false
		for _, f := range a.prog.Funcs {
			prev := a.exitViols[f.Name]
			fr, err := a.analyzeFunc(f)
			if err != nil {
				return nil, err
			}
			a.results[f.Name] = fr
			now := fr.Exit.Violations
			if !sameViolationKeys(prev, now) {
				changed = true
			}
			a.exitViols[f.Name] = now
		}
		if !changed {
			break
		}
	}
	res := &Result{Program: a, Funcs: a.results}
	return res, nil
}

// Analyze runs the full program analysis and returns the result for one
// function.
func Analyze(prog *lang.Program, fnName string) (*FuncResult, error) {
	a := New(prog)
	res, err := a.AnalyzeAll()
	if err != nil {
		return nil, err
	}
	fr, ok := res.Funcs[fnName]
	if !ok {
		return nil, fmt.Errorf("analysis: no function %q", fnName)
	}
	return fr, nil
}

func sameViolationKeys(a, b map[ViolationKey]*Violation) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func (a *Analyzer) newEdgeID() int {
	a.edgeID++
	return a.edgeID
}

// entryState builds the conservative function-entry assumption: every
// pair of same-record-type pointer parameters may be aliases.
func (a *Analyzer) entryState(f *lang.FuncDecl) *State {
	s := NewState()
	var ptrs []struct {
		name string
		elem string
	}
	for _, prm := range f.Params {
		if elem, ok := lang.IsPointer(prm.Type); ok {
			s.PM.AddHandle(prm.Name)
			ptrs = append(ptrs, struct {
				name string
				elem string
			}{prm.Name, elem})
		}
	}
	for i := range ptrs {
		for j := range ptrs {
			if i == j || ptrs[i].elem != ptrs[j].elem {
				continue
			}
			s.PM.Update(ptrs[i].name, ptrs[j].name, func(e *pathmatrix.Entry) {
				e.Alias = pathmatrix.PossibleAlias
			})
		}
	}
	return s
}

func (a *Analyzer) analyzeFunc(f *lang.FuncDecl) (*FuncResult, error) {
	fr := &FuncResult{
		Name:          f.Name,
		Before:        make(map[lang.Stmt]*State),
		After:         make(map[lang.Stmt]*State),
		LoopInvariant: make(map[lang.Stmt]*State),
		LoopBodyExit:  make(map[lang.Stmt]*State),
		an:            a,
	}
	fr.Entry = a.entryState(f)
	ctx := &funcCtx{an: a, fr: fr, fn: f}
	st := fr.Entry.Clone()
	out, err := ctx.block(f.Body, st)
	if err != nil {
		return nil, err
	}
	if ctx.exit != nil {
		if out != nil {
			out = joinStates(out, ctx.exit)
		} else {
			out = ctx.exit
		}
	}
	if out == nil {
		out = NewState()
	}
	fr.Exit = out
	return fr, nil
}

// funcCtx is the per-function analysis context.
type funcCtx struct {
	an   *Analyzer
	fr   *FuncResult
	fn   *lang.FuncDecl
	exit *State // join of states at return statements
}

// block analyzes a block, returning the fall-through state (nil when the
// block definitely returns). Pointer handles declared in the block are
// removed from the resulting state (scope exit).
func (c *funcCtx) block(b *lang.Block, st *State) (*State, error) {
	if b == nil {
		return st, nil
	}
	var declared []string
	cur := st
	for _, s := range b.Stmts {
		if cur == nil {
			// Unreachable code after a return: skip (conservatively,
			// nothing to analyze).
			break
		}
		c.fr.Before[s] = cur.Clone()
		next, err := c.stmt(s, cur)
		if err != nil {
			return nil, err
		}
		if vs, ok := s.(*lang.VarStmt); ok {
			if _, isPtr := lang.IsPointer(vs.DeclType); isPtr {
				declared = append(declared, vs.Name)
			}
		}
		if next != nil {
			c.fr.After[s] = next.Clone()
		}
		cur = next
	}
	if cur != nil {
		for _, h := range declared {
			cur.PM.RemoveHandle(h)
		}
	}
	return cur, nil
}
