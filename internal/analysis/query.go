package analysis

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/pathmatrix"
)

// MatrixBefore returns the path matrix just before stmt, or nil if the
// statement was not reached.
func (fr *FuncResult) MatrixBefore(s lang.Stmt) *pathmatrix.Matrix {
	if st, ok := fr.Before[s]; ok {
		return st.PM
	}
	return nil
}

// MatrixAfter returns the path matrix just after stmt, or nil.
func (fr *FuncResult) MatrixAfter(s lang.Stmt) *pathmatrix.Matrix {
	if st, ok := fr.After[s]; ok {
		return st.PM
	}
	return nil
}

// Invariant returns the loop-head fixed point for a while/for statement.
func (fr *FuncResult) Invariant(loop lang.Stmt) *State {
	return fr.LoopInvariant[loop]
}

// MayAliasAt reports whether handles a and b may alias in the state
// before stmt. Unreached statements and unknown handles answer true
// (conservative).
func (fr *FuncResult) MayAliasAt(s lang.Stmt, a, b string) bool {
	st, ok := fr.Before[s]
	if !ok {
		return true
	}
	if !st.PM.HasHandle(a) || !st.PM.HasHandle(b) {
		return true
	}
	return st.PM.Get(a, b).Alias != pathmatrix.NoAlias
}

// InductionStrictlyAdvances reports whether, at the loop body's exit
// (before the back edge), the previous-iteration handle v' is provably
// not an alias of v and lies a definite ≥1-step path above it along a
// single acyclic forward dimension. By induction over iterations the
// paths compose along the acyclic dimension, so all iterations' values
// of v are pairwise distinct — the fact that licenses parallel
// processing of the loop's nodes (§3.3.2, §4.3.2).
func (fr *FuncResult) InductionStrictlyAdvances(loop lang.Stmt, v string) bool {
	st := fr.LoopBodyExit[loop]
	if st == nil {
		return false
	}
	prime := v + PrimeSuffix
	if !st.PM.HasHandle(v) || !st.PM.HasHandle(prime) {
		return false
	}
	e := st.PM.Get(prime, v)
	if e.Alias != pathmatrix.NoAlias {
		return false
	}
	for _, d := range e.Descs {
		if d.Star {
			continue // a ≥0 path does not prove advancement
		}
		if fr.an.forwardAlongOneDim(d.Fields) {
			return true
		}
	}
	return false
}

// FindLoop locates the n-th while loop (0-based, source order) in fn.
func FindLoop(fn *lang.FuncDecl, n int) (*lang.WhileStmt, error) {
	var found *lang.WhileStmt
	count := 0
	lang.Walk(fn.Body, func(s lang.Stmt) bool {
		if w, ok := s.(*lang.WhileStmt); ok {
			if count == n {
				found = w
				return false
			}
			count++
		}
		return true
	})
	if found == nil {
		return nil, fmt.Errorf("analysis: function %s has no while loop #%d", fn.Name, n)
	}
	return found, nil
}

// FindAssign locates the first assignment in fn whose formatted text
// equals text (whitespace-insensitive match on the canonical printer
// output, e.g. "p = p->next;").
func FindAssign(fn *lang.FuncDecl, text string) (*lang.AssignStmt, error) {
	var found *lang.AssignStmt
	lang.Walk(fn.Body, func(s lang.Stmt) bool {
		if as, ok := s.(*lang.AssignStmt); ok {
			if lang.FormatExpr(as.LHS)+" = "+lang.FormatExpr(as.RHS)+";" == text {
				found = as
				return false
			}
		}
		return true
	})
	if found == nil {
		return nil, fmt.Errorf("analysis: function %s has no assignment %q", fn.Name, text)
	}
	return found, nil
}
