package analysis

import (
	"testing"

	"repro/internal/adds"
	"repro/internal/lang"
)

const cacheTestSrc = adds.OneWayListSrc + `
procedure leaf(OneWayList *p) {
  p->data = 1;
}
procedure mid(OneWayList *p) {
  leaf(p);
}
procedure top(OneWayList *p) {
  mid(p);
}
procedure scale(OneWayList *head) {
  var OneWayList *p = head;
  while p != NULL {
    p->data = p->data + 1;
    p = p->next;
  }
}
`

// leafVariantSrc is the same program with leaf rewritten to store a
// pointer field, which changes leaf's effect summary and so must
// cascade up the call chain through mid and top.
const leafVariantSrc = adds.OneWayListSrc + `
procedure leaf(OneWayList *p) {
  p->next = NULL;
}
`

// TestCacheUpdateCascadesAndMemoizes: touching leaf with a rewrite that
// changes its closed effects must re-analyze exactly the reverse-call-
// graph cascade (leaf, mid, top) while the unrelated function keeps its
// memoized FuncResult — pointer-identical, statement keys intact.
func TestCacheUpdateCascadesAndMemoizes(t *testing.T) {
	prog, err := lang.Parse(cacheTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCache(prog)
	if err != nil {
		t.Fatal(err)
	}
	scaleBefore := c.Func("scale")
	if scaleBefore == nil {
		t.Fatal("no result for scale")
	}

	variant, err := lang.Parse(leafVariantSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog.Func("leaf").Body = variant.Func("leaf").Body

	redone, err := c.Update("leaf")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, n := range redone {
		got[n] = true
	}
	for _, want := range []string{"leaf", "mid", "top"} {
		if !got[want] {
			t.Errorf("Update did not re-analyze %s (got %v)", want, redone)
		}
	}
	if got["scale"] {
		t.Errorf("Update re-analyzed unrelated function scale (got %v)", redone)
	}

	if c.Func("scale") != scaleBefore {
		t.Error("untouched function scale lost its memoized FuncResult")
	}
	newLeaf := c.Func("leaf")
	if newLeaf == scaleBefore || newLeaf == nil {
		t.Fatal("leaf result missing after Update")
	}
	// The fresh result must be keyed by the *new* body's statements.
	stmt := prog.Func("leaf").Body.Stmts[0]
	if newLeaf.After[stmt] == nil {
		t.Error("leaf result not keyed by the rewritten body's statements")
	}
}

// TestCacheMatchesFreshAnalysis: after an Update, every fact the cache
// serves must match a from-scratch analysis of the same program. Edge
// IDs may differ, so the comparison uses ID-independent observables.
func TestCacheMatchesFreshAnalysis(t *testing.T) {
	prog, err := lang.Parse(cacheTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCache(prog)
	if err != nil {
		t.Fatal(err)
	}
	variant, err := lang.Parse(leafVariantSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog.Func("leaf").Body = variant.Func("leaf").Body
	if _, err := c.Update("leaf"); err != nil {
		t.Fatal(err)
	}

	fresh, err := New(prog).AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	loop, err := FindLoop(prog.Func("scale"), 0)
	if err != nil {
		t.Fatal(err)
	}
	cFR, fFR := c.Func("scale"), fresh.Funcs["scale"]
	if cg, fg := cFR.InductionStrictlyAdvances(loop, "p"), fFR.InductionStrictlyAdvances(loop, "p"); cg != fg {
		t.Errorf("InductionStrictlyAdvances: cache %v, fresh %v", cg, fg)
	}
	for _, pair := range [][2]string{{"p", "head"}, {"p", "p" + PrimeSuffix}} {
		stmt := prog.Func("scale").Body.Stmts[0]
		if cg, fg := cFR.MayAliasAt(stmt, pair[0], pair[1]), fFR.MayAliasAt(stmt, pair[0], pair[1]); cg != fg {
			t.Errorf("MayAliasAt(%s,%s): cache %v, fresh %v", pair[0], pair[1], cg, fg)
		}
	}
}

// TestCacheNewFunction: Update must pick up a function added after the
// cache was built (the planner adds a helper procedure per rewrite).
func TestCacheNewFunction(t *testing.T) {
	prog, err := lang.Parse(cacheTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCache(prog)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := lang.Parse(adds.OneWayListSrc + `
procedure added(OneWayList *p) {
  p->data = 7;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.AddFunc(extra.Func("added")); err != nil {
		t.Fatal(err)
	}
	redone, err := c.Update("added")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range redone {
		found = found || n == "added"
	}
	if !found {
		t.Fatalf("Update(%q) did not analyze the new function (got %v)", "added", redone)
	}
	if c.Func("added") == nil {
		t.Error("no FuncResult for the newly added function")
	}
}
