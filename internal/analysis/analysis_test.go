package analysis

import (
	"strings"
	"testing"

	"repro/internal/adds"
	"repro/internal/lang"
	"repro/internal/pathmatrix"
)

// polyProgram is the paper's §3.3.2 example: scaling the coefficients of
// a polynomial stored in a one-way list.
const polyProgram = `
type OneWayList [X]
{ int coef, exp;
  OneWayList *next is uniquely forward along X;
};

procedure scale(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    p->coef = p->coef * c;
    p = p->next;
  }
}
`

func analyzeOne(t *testing.T, src, fn string) (*lang.Program, *FuncResult) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Analyze(prog, fn)
	if err != nil {
		t.Fatal(err)
	}
	return prog, fr
}

// TestPolyLoopMatrices reproduces PM1: the paper's path matrices for the
// polynomial-scaling loop (§3.3.2).
func TestPolyLoopMatrices(t *testing.T) {
	prog, fr := analyzeOne(t, polyProgram, "scale")
	scale := prog.Func("scale")
	loop, err := FindLoop(scale, 0)
	if err != nil {
		t.Fatal(err)
	}

	// "Just before the loop": head and p are definite aliases.
	before := fr.Before[loop]
	if before == nil {
		t.Fatal("no state before loop")
	}
	if got := before.PM.Get("head", "p").Alias; got != pathmatrix.DefiniteAlias {
		t.Errorf("before loop: head/p = %v, want definite alias", got)
	}

	// At the fixed point, inside the loop after the advance:
	// head -> p is a definite next-path with no alias, and p' -> p is a
	// one-step next edge — "the ADDS declaration and the analysis have
	// captured ... that head, p, and p' are never aliases".
	adv, err := FindAssign(scale, "p = p->next;")
	if err != nil {
		t.Fatal(err)
	}
	after := fr.After[adv]
	if after == nil {
		t.Fatal("no state after p = p->next")
	}
	hp := after.PM.Get("head", "p")
	if hp.Alias != pathmatrix.NoAlias {
		t.Errorf("after advance: head/p alias = %v, want NoAlias\n%s", hp.Alias, after.PM)
	}
	if !hp.HasPath() {
		t.Errorf("after advance: head -> p should record a next path\n%s", after.PM)
	}
	pp := after.PM.Get("p"+PrimeSuffix, "p")
	if pp.Alias != pathmatrix.NoAlias || !pp.HasPath() {
		t.Errorf("after advance: p' -> p = %q, want next edge with no alias\n%s", pp, after.PM)
	}
	if !fr.InductionStrictlyAdvances(loop, "p") {
		t.Error("induction pointer must provably advance")
	}

	// After the loop, p == NULL: killed, aliases nothing.
	if len(fr.Exit.Violations) != 0 {
		t.Errorf("scale must end with a valid abstraction, got %v", fr.Exit.ViolationKeys())
	}
}

// TestConservativeWithoutADDS shows the paper's contrast: with the
// unannotated ListNode declaration the same loop cannot prove head, p
// distinct.
func TestConservativeWithoutADDS(t *testing.T) {
	src := `
type ListNode
{ int coef, exp;
  ListNode *next;
};

procedure scale(ListNode *head, int c) {
  var ListNode *p = head;
  while p != NULL {
    p->coef = p->coef * c;
    p = p->next;
  }
}
`
	prog, fr := analyzeOne(t, src, "scale")
	scale := prog.Func("scale")
	adv, err := FindAssign(scale, "p = p->next;")
	if err != nil {
		t.Fatal(err)
	}
	after := fr.After[adv]
	if after.PM.Get("head", "p").Alias == pathmatrix.NoAlias {
		t.Errorf("without ADDS the analysis must not prove head/p distinct\n%s", after.PM)
	}
	loop, _ := FindLoop(scale, 0)
	if fr.InductionStrictlyAdvances(loop, "p") {
		t.Error("without ADDS the induction must not provably advance")
	}
}

// TestSubtreeMoveValidation reproduces V1 (§3.3.1): moving a subtree
// breaks the binary tree's disjointness, and the immediately following
// NULL store repairs it.
func TestSubtreeMoveValidation(t *testing.T) {
	src := adds.BinTreeSrc + `
procedure move(BinTree *p1, BinTree *p2) {
  p1->left = p2->left;
  p2->left = NULL;
}
`
	prog, fr := analyzeOne(t, src, "move")
	move := prog.Func("move")
	// After the first store the abstraction is broken... (normalization
	// hoists the load, so locate the store itself).
	var firstStore lang.Stmt
	lang.Walk(move.Body, func(s lang.Stmt) bool {
		if as, ok := s.(*lang.AssignStmt); ok {
			if fe, ok := as.LHS.(*lang.FieldExpr); ok && fe.Base() != nil && fe.Base().Name == "p1" {
				firstStore = s
				return false
			}
		}
		return true
	})
	if firstStore == nil {
		t.Fatal("store not found")
	}
	st1 := fr.After[firstStore]
	if st1 == nil {
		t.Fatal("no state after first store")
	}
	if st1.Valid("BinTree", "down") {
		t.Errorf("sharing violation expected after p1->left = p2->left; violations = %v", st1.ViolationKeys())
	}
	// ...and the second statement fixes it.
	if !fr.Exit.Valid("BinTree", "down") {
		t.Errorf("violation must clear after p2->left = NULL; still active: %v", fr.Exit.ViolationKeys())
	}
}

// TestSubtreeMoveNotFixed: without the repair store the violation
// persists to the exit.
func TestSubtreeMoveNotFixed(t *testing.T) {
	src := adds.BinTreeSrc + `
procedure move(BinTree *p1, BinTree *p2) {
  p1->left = p2->left;
}
`
	_, fr := analyzeOne(t, src, "move")
	if fr.Exit.Valid("BinTree", "down") {
		t.Error("unrepaired sharing must persist at exit")
	}
}

// TestCycleViolation: closing a cycle along a forward direction is
// flagged; overwriting the offending edge clears it.
func TestCycleViolation(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure close(OneWayList *a) {
  var OneWayList *b = a->next;
  b->next = a;
  b->next = NULL;
}
`
	prog, fr := analyzeOne(t, src, "close")
	cl := prog.Func("close")
	store := cl.Body.Stmts[1]
	st := fr.After[store]
	if st.Valid("OneWayList", "X") {
		t.Errorf("cycle violation expected after b->next = a (b is a's next): %v", st.ViolationKeys())
	}
	if !fr.Exit.Valid("OneWayList", "X") {
		t.Errorf("overwrite must clear the cycle violation: %v", fr.Exit.ViolationKeys())
	}
}

// TestSelfLoopViolation: p->next = p is a definite cycle.
func TestSelfLoopViolation(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure self(OneWayList *p) {
  p->next = p;
}
`
	_, fr := analyzeOne(t, src, "self")
	if fr.Exit.Valid("OneWayList", "X") {
		t.Error("self loop must violate the forward declaration")
	}
}

// TestFreshListBuildIsValid: building a list with fresh nodes keeps the
// abstraction valid (no false sharing/cycle reports).
func TestFreshListBuildIsValid(t *testing.T) {
	src := adds.OneWayListSrc + `
function OneWayList * build(int n) {
  var OneWayList *head = NULL;
  var int i = 0;
  while i < n {
    var OneWayList *node = new OneWayList;
    node->next = head;
    head = node;
    i = i + 1;
  }
  return head;
}
`
	_, fr := analyzeOne(t, src, "build")
	if len(fr.Exit.Violations) != 0 {
		t.Errorf("prepending fresh nodes is shape-preserving; got %v", fr.Exit.ViolationKeys())
	}
}

// TestAppendSharedNodeViolates: inserting the same node twice is a
// sharing violation that persists.
func TestAppendSharedNodeViolates(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure bad(OneWayList *a, OneWayList *b) {
  var OneWayList *n = new OneWayList;
  a->next = n;
  b->next = n;
}
`
	_, fr := analyzeOne(t, src, "bad")
	// a and b may be distinct, in which case n acquires two in-edges.
	if fr.Exit.Valid("OneWayList", "X") {
		t.Error("double insertion must flag sharing")
	}
}

// TestLoadAfterStoreBindsDefinite: p->f = q; r = p->f must make r a
// definite alias of q.
func TestLoadAfterStoreBindsDefinite(t *testing.T) {
	src := adds.BinTreeSrc + `
procedure f(BinTree *p) {
  var BinTree *q = new BinTree;
  p->left = q;
  var BinTree *r = p->left;
  if r == q {
    print("same");
  }
}
`
	prog, fr := analyzeOne(t, src, "f")
	fn := prog.Func("f")
	var rDecl *lang.VarStmt
	lang.Walk(fn.Body, func(s lang.Stmt) bool {
		if vs, ok := s.(*lang.VarStmt); ok && vs.Name == "r" {
			rDecl = vs
			return false
		}
		return true
	})
	if rDecl == nil {
		t.Fatal("no var r")
	}
	st := fr.After[rDecl]
	if got := st.PM.Get("r", "q").Alias; got != pathmatrix.DefiniteAlias {
		t.Errorf("r/q = %v, want definite alias\n%s", got, st.PM)
	}
}

// TestNewIsDisjoint: a fresh node aliases nothing.
func TestNewIsDisjoint(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure f(OneWayList *a, OneWayList *b) {
  var OneWayList *n = new OneWayList;
  print(1);
}
`
	prog, fr := analyzeOne(t, src, "f")
	fn := prog.Func("f")
	last := fn.Body.Stmts[len(fn.Body.Stmts)-1]
	st := fr.Before[last]
	for _, h := range []string{"a", "b"} {
		if st.PM.Get("n", h).Alias != pathmatrix.NoAlias {
			t.Errorf("fresh n vs %s should be NoAlias", h)
		}
	}
	// While parameters a and b may alias each other.
	if st.PM.Get("a", "b").Alias != pathmatrix.PossibleAlias {
		t.Error("parameters of the same type must be possible aliases at entry")
	}
}

// TestSiblingDisjointness: two distinct children of the same tree node
// are provably distinct (uniquely forward along one dimension).
func TestSiblingDisjointness(t *testing.T) {
	src := adds.BinTreeSrc + `
procedure f(BinTree *t) {
  var BinTree *l = t->left;
  var BinTree *r = t->right;
  print(1);
}
`
	prog, fr := analyzeOne(t, src, "f")
	fn := prog.Func("f")
	last := fn.Body.Stmts[len(fn.Body.Stmts)-1]
	st := fr.Before[last]
	if got := st.PM.Get("l", "r").Alias; got != pathmatrix.NoAlias {
		t.Errorf("left and right children must be provably distinct, got %v\n%s", got, st.PM)
	}
	// And both are below t.
	if st.PM.Get("t", "l").Alias != pathmatrix.NoAlias {
		t.Error("t and t->left are distinct along an acyclic dimension")
	}
}

// TestUnknownDirectionStaysPossible: with an unannotated field, the
// child may alias anything.
func TestUnknownDirectionStaysPossible(t *testing.T) {
	src := adds.ListNodeSrc + `
procedure f(ListNode *a, ListNode *b) {
  var ListNode *c = a->next;
  print(1);
}
`
	prog, fr := analyzeOne(t, src, "f")
	fn := prog.Func("f")
	last := fn.Body.Stmts[len(fn.Body.Stmts)-1]
	st := fr.Before[last]
	if st.PM.Get("c", "a").Alias == pathmatrix.NoAlias {
		t.Error("possibly-cyclic next: c may alias a")
	}
	if st.PM.Get("c", "b").Alias == pathmatrix.NoAlias {
		t.Error("c may alias unrelated b")
	}
}

// TestIfJoin: facts proven in only one branch weaken at the join.
func TestIfJoin(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure f(OneWayList *a, OneWayList *b, bool cond) {
  var OneWayList *p = NULL;
  if cond {
    p = a;
  } else {
    p = b;
  }
  print(1);
}
`
	prog, fr := analyzeOne(t, src, "f")
	fn := prog.Func("f")
	last := fn.Body.Stmts[len(fn.Body.Stmts)-1]
	st := fr.Before[last]
	if st.PM.Get("p", "a").Alias != pathmatrix.PossibleAlias {
		t.Errorf("p/a after join = %v, want possible", st.PM.Get("p", "a").Alias)
	}
	if st.PM.Get("p", "b").Alias != pathmatrix.PossibleAlias {
		t.Errorf("p/b after join = %v, want possible", st.PM.Get("p", "b").Alias)
	}
}

// TestNeqRefinement: if p != q then inside the branch they do not alias.
func TestNeqRefinement(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure f(OneWayList *p, OneWayList *q) {
  if p != q {
    print(1);
  }
}
`
	prog, fr := analyzeOne(t, src, "f")
	fn := prog.Func("f")
	ifs := fn.Body.Stmts[0].(*lang.IfStmt)
	st := fr.Before[ifs.Then.Stmts[0]]
	if st.PM.Get("p", "q").Alias != pathmatrix.NoAlias {
		t.Errorf("p != q branch: alias = %v, want NoAlias", st.PM.Get("p", "q").Alias)
	}
}

// TestEqNullRefinement: after "if p == NULL", p aliases nothing inside.
func TestEqNullRefinement(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure f(OneWayList *p, OneWayList *q) {
  if p == NULL {
    print(1);
  }
}
`
	prog, fr := analyzeOne(t, src, "f")
	fn := prog.Func("f")
	ifs := fn.Body.Stmts[0].(*lang.IfStmt)
	st := fr.Before[ifs.Then.Stmts[0]]
	if st.PM.Get("p", "q").Alias != pathmatrix.NoAlias {
		t.Error("NULL pointer aliases nothing")
	}
}

// TestCalleeStoreInvalidatesPaths: calling a function that stores next
// must drop definite next paths in the caller, but caller handle
// aliasing facts survive.
func TestCalleeStoreInvalidatesPaths(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure mutate(OneWayList *x) {
  x->next = NULL;
}

procedure f(OneWayList *head) {
  var OneWayList *p = head->next;
  mutate(head);
  print(1);
}
`
	prog, fr := analyzeOne(t, src, "f")
	fn := prog.Func("f")
	last := fn.Body.Stmts[len(fn.Body.Stmts)-1]
	st := fr.Before[last]
	e := st.PM.Get("head", "p")
	if e.HasPath() {
		t.Errorf("definite next path must not survive mutate(): %q", e)
	}
	if e.Alias != pathmatrix.NoAlias {
		t.Errorf("handle aliasing cannot be changed by a callee: %v", e.Alias)
	}
}

// TestCalleeViolationPropagates: a callee that exits with a broken
// abstraction poisons its caller.
func TestCalleeViolationPropagates(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure breakit(OneWayList *x) {
  x->next = x;
}

procedure f(OneWayList *head) {
  breakit(head);
}
`
	_, fr := analyzeOne(t, src, "f")
	if fr.Exit.Valid("OneWayList", "X") {
		t.Error("callee violation must propagate to the caller")
	}
}

// TestRecursiveFunctionConverges: recursion must not hang the analyzer.
func TestRecursiveFunctionConverges(t *testing.T) {
	src := adds.BinTreeSrc + `
function int count(BinTree *t) {
  if t == NULL {
    return 0;
  }
  return 1 + count(t->left) + count(t->right);
}
`
	_, fr := analyzeOne(t, src, "count")
	if len(fr.Exit.Violations) != 0 {
		t.Errorf("read-only recursion is violation-free, got %v", fr.Exit.ViolationKeys())
	}
}

// TestTwoWayListBackwardLoad: loading prev gives no-alias against the
// loaded-from handle (acyclic direction) but stays possible against
// unrelated handles.
func TestTwoWayListBackwardLoad(t *testing.T) {
	src := adds.TwoWayListSrc + `
procedure f(TwoWayList *a, TwoWayList *b) {
  var TwoWayList *p = a->prev;
  print(1);
}
`
	prog, fr := analyzeOne(t, src, "f")
	fn := prog.Func("f")
	last := fn.Body.Stmts[len(fn.Body.Stmts)-1]
	st := fr.Before[last]
	if st.PM.Get("a", "p").Alias != pathmatrix.NoAlias {
		t.Error("a and a->prev are distinct (prev is acyclic backward)")
	}
	if st.PM.Get("b", "p").Alias == pathmatrix.NoAlias {
		t.Error("backward load gives no disjointness against unrelated handles")
	}
}

// TestMatrixRendering: the printed matrix contains the paper's glyphs.
func TestMatrixRendering(t *testing.T) {
	prog, fr := analyzeOne(t, polyProgram, "scale")
	scale := prog.Func("scale")
	adv, _ := FindAssign(scale, "p = p->next;")
	s := fr.After[adv].PM.String()
	if !strings.Contains(s, "next+") {
		t.Errorf("expected next+ in matrix:\n%s", s)
	}
	if !strings.Contains(s, "p'") {
		t.Errorf("expected primed handle in matrix:\n%s", s)
	}
}

// TestOctreeLeavesTraversal: the BHL1-style loop over the leaves list of
// an octree proves strict advance.
func TestOctreeLeavesTraversal(t *testing.T) {
	src := adds.OctreeSrc + `
procedure walk(Octree *particles) {
  var Octree *p = particles;
  while p != NULL {
    p->forcex = 0.0;
    p = p->next;
  }
}
`
	prog, fr := analyzeOne(t, src, "walk")
	fn := prog.Func("walk")
	loop, _ := FindLoop(fn, 0)
	if !fr.InductionStrictlyAdvances(loop, "p") {
		t.Error("octree leaves traversal must strictly advance")
	}
}
