package analysis

import (
	"fmt"

	"repro/internal/adds"
	"repro/internal/lang"
	"repro/internal/pathmatrix"
)

// stmt is the statement transfer function. It returns the state after
// the statement, or nil if control cannot fall through (return).
func (c *funcCtx) stmt(s lang.Stmt, st *State) (*State, error) {
	switch s := s.(type) {
	case *lang.Block:
		return c.block(s, st)

	case *lang.VarStmt:
		if _, isPtr := lang.IsPointer(s.DeclType); !isPtr {
			// A scalar (re)declaration stales any array-index knowledge
			// recorded under this name.
			st.invalidateIndexVar(s.Name)
			return c.scalarEffects(st, s.Init)
		}
		st.PM.AddHandle(s.Name)
		if s.Init == nil {
			// Uninitialized pointer: treated as NULL (no relationships).
			return st, nil
		}
		return c.assignPointer(st, s.Name, s.Init, s.Pos())

	case *lang.AssignStmt:
		switch lhs := s.LHS.(type) {
		case *lang.Ident:
			if _, isPtr := lang.IsPointer(lhs.Type()); !isPtr {
				st.invalidateIndexVar(lhs.Name)
				return c.scalarEffects(st, s.RHS)
			}
			return c.assignPointer(st, lhs.Name, s.RHS, s.Pos())
		case *lang.FieldExpr:
			if _, isPtr := lang.IsPointer(lhs.Type()); isPtr {
				return c.store(st, lhs, s.RHS, s.Pos())
			}
			// Data-field write: heap shape unchanged.
			return c.scalarEffects(st, s.RHS)
		}
		return nil, fmt.Errorf("%s: unexpected assignment target %T", s.Pos(), s.LHS)

	case *lang.CallStmt:
		return c.call(st, s.Call)

	case *lang.ReturnStmt:
		if s.Value != nil {
			var err error
			st, err = c.scalarEffects(st, s.Value)
			if err != nil {
				return nil, err
			}
		}
		if c.exit == nil {
			c.exit = st.Clone()
		} else {
			c.exit = joinStates(c.exit, st)
		}
		return nil, nil

	case *lang.IfStmt:
		st, err := c.scalarEffects(st, s.Cond)
		if err != nil {
			return nil, err
		}
		thenIn := st.Clone()
		refineCond(thenIn, s.Cond, true)
		thenOut, err := c.block(s.Then, thenIn)
		if err != nil {
			return nil, err
		}
		elseIn := st.Clone()
		refineCond(elseIn, s.Cond, false)
		elseOut := elseIn
		if s.Else != nil {
			elseOut, err = c.block(s.Else, elseIn)
			if err != nil {
				return nil, err
			}
		}
		switch {
		case thenOut == nil:
			return elseOut, nil
		case elseOut == nil:
			return thenOut, nil
		default:
			return joinStates(thenOut, elseOut), nil
		}

	case *lang.WhileStmt:
		return c.whileLoop(s, st)

	case *lang.ForStmt:
		return c.forLoop(s, st)
	}
	return nil, fmt.Errorf("%s: unknown statement %T", s.Pos(), s)
}

// scalarEffects accounts for calls embedded in a scalar expression (its
// pointer loads do not move handles, but calls may mutate the heap).
func (c *funcCtx) scalarEffects(st *State, e lang.Expr) (*State, error) {
	var err error
	lang.WalkExprs(wrapExprStmt(e), func(x lang.Expr) {
		if err != nil {
			return
		}
		if call, ok := x.(*lang.CallExpr); ok {
			st, err = c.call(st, call)
		}
	})
	return st, err
}

// wrapExprStmt lets WalkExprs traverse a bare expression.
func wrapExprStmt(e lang.Expr) lang.Stmt {
	rs := &lang.ReturnStmt{Value: e}
	return rs
}

// ---------------------------------------------------------------------------
// Pointer assignment rules

// assignPointer dispatches on the canonical RHS forms of a pointer
// assignment to variable p.
func (c *funcCtx) assignPointer(st *State, p string, rhs lang.Expr, pos lang.Pos) (*State, error) {
	st.PM.AddHandle(p)
	if id, ok := rhs.(*lang.Ident); !ok || id.Name != p {
		// p is about to take a new value: violation edge references
		// through p must transfer or drop.
		st.Retarget(p, st.PM)
	}
	switch rhs := rhs.(type) {
	case *lang.NullLit:
		// p = NULL: p aliases nothing.
		st.PM.Kill(p)
		delete(st.Prov, p)
		return st, nil

	case *lang.Ident:
		// p = q: p's relationships become exactly q's.
		if rhs.Name == p {
			return st, nil
		}
		st.PM.Kill(p)
		st.PM.CopyRelationships(p, rhs.Name)
		if pv, ok := st.Prov[rhs.Name]; ok {
			st.Prov[p] = pv
		} else {
			delete(st.Prov, p)
		}
		return st, nil

	case *lang.NewExpr:
		// p = new T: fresh node, disjoint from everything.
		st.PM.Kill(p)
		delete(st.Prov, p)
		return st, nil

	case *lang.FieldExpr:
		return c.load(st, p, rhs, pos)

	case *lang.CallExpr:
		st, err := c.call(st, rhs)
		if err != nil {
			return nil, err
		}
		return c.bindCallResult(st, p, rhs), nil
	}
	return nil, fmt.Errorf("%s: non-canonical pointer assignment RHS %T (normalizer bug?)", pos, rhs)
}

// load implements p = q->f (§3.3's load rule, sharpened by ADDS).
func (c *funcCtx) load(st *State, p string, fe *lang.FieldExpr, pos lang.Pos) (*State, error) {
	base := fe.Base()
	if base == nil {
		return nil, fmt.Errorf("%s: chained load not normalized", pos)
	}
	q := base.Name
	elem, _ := lang.IsPointer(base.Type())
	decl := c.an.prog.Universe.Decl(elem)
	pf := decl.Pointer(fe.Field)
	if pf == nil {
		return nil, fmt.Errorf("%s: %s has no pointer field %s", pos, elem, fe.Field)
	}

	old := st.PM.Clone()
	st.PM.Kill(p)

	// If some handle y is the definite target of q->f (an exact edge
	// from a definite alias of q, via a non-array field), the load binds
	// p to y's relationships.
	if pf.Count == 1 {
		for _, x := range old.Handles() {
			if x != q && old.Get(q, x).Alias != pathmatrix.DefiniteAlias {
				continue
			}
			for _, y := range old.Handles() {
				if y == p {
					continue // old p's value is being replaced
				}
				if _, ok := old.Get(x, y).HasExact(fe.Field); ok {
					st.PM.Kill(p)
					st.PM.CopyRelationships(p, y)
					return st, nil
				}
			}
		}
	}

	// General case. Base entry: q -> p is one f-link.
	acyclic := pf.Dir != adds.Unknown
	baseEntry := pathmatrix.Entry{}
	if acyclic {
		baseEntry.Alias = pathmatrix.NoAlias
	} else {
		baseEntry.Alias = pathmatrix.PossibleAlias
	}
	baseEntry.AddDesc(pathmatrix.ExactIndexedDesc(fe.Field, indexKey(fe.Index), c.an.newEdgeID()))

	// Default alias verdict for handles unrelated to q: along a valid
	// uniquely-forward dimension, unrelated handles point into disjoint
	// substructures, so the loaded child stays disjoint (the tree
	// disjointness invariant). Otherwise we must assume PossibleAlias.
	defaultNo := pf.Dir == adds.Forward &&
		decl.UniqueAlong(pf.Dim) &&
		st.Valid(elem, pf.Dim)

	// Record p's provenance: it was just reached by a forward step
	// along pf.Dim from q (used for the independence and
	// distinct-parent disproofs below). When q is p itself, the parent
	// node is no longer nameable.
	if pf.Dir == adds.Forward {
		src := q
		if q == p {
			src = ""
		}
		st.Prov[p] = Provenance{Dim: pf.Dim, Src: src}
	} else {
		delete(st.Prov, p)
	}

	for _, x := range old.Handles() {
		if x == p {
			continue
		}
		exq := old.Get(x, q) // x -> q
		eqx := old.Get(q, x) // q -> x

		var toP pathmatrix.Entry // x -> p
		switch {
		case exq.Alias == pathmatrix.DefiniteAlias || x == q:
			toP = baseEntry.Clone()
		default:
			// Path extension: a definite monotone path from x to q
			// extends by f into a definite monotone path from x to p
			// (forward and backward both compose acyclically).
			if pf.Dir != adds.Unknown {
				for _, d := range exq.Descs {
					if c.allMonotoneAlong(d.Fields, pf.Dim, pf.Dir) {
						fields := append(append([]string(nil), d.Fields...), fe.Field)
						toP.AddDesc(pathmatrix.PlusDesc(fields...))
					}
				}
			}
			// Independence disproof (§3.1.3): if x was reached by a
			// forward traversal along a dimension declared independent
			// of pf.Dim, x cannot be the node p (which is reached
			// forward along pf.Dim).
			// Two provenance-based disproofs (x's value was itself
			// produced by a forward load):
			//  - independence: x came forward along a dimension
			//    declared independent of pf.Dim (§3.1.3);
			//  - distinct parents: x came along pf.Dim itself, from a
			//    parent provably different from q — uniqueness of the
			//    dimension's in-edges separates the children.
			provNo := false
			if pf.Dir == adds.Forward {
				if pv, ok := st.Prov[x]; ok && x != p {
					if decl.Independent(pv.Dim, pf.Dim) {
						provNo = true
					}
					if pv.Dim == pf.Dim && pv.Src != "" && pv.Src != q &&
						decl.UniqueAlong(pf.Dim) && st.Valid(elem, pf.Dim) &&
						old.Get(pv.Src, q).Alias == pathmatrix.NoAlias &&
						old.Get(q, pv.Src).Alias == pathmatrix.NoAlias {
						provNo = true
					}
				}
			}
			switch {
			case provNo:
				toP.Alias = pathmatrix.NoAlias
			case toP.HasPath() && acyclic:
				toP.Alias = pathmatrix.NoAlias
			case exq.Alias == pathmatrix.PossibleAlias:
				toP.Alias = pathmatrix.PossibleAlias
			case defaultNo && !c.crossChildPossible(decl, eqx, pf, fe.Field):
				toP.Alias = pathmatrix.NoAlias
			default:
				toP.Alias = pathmatrix.PossibleAlias
			}
		}
		st.PM.Set(x, p, toP)

		// Mirror the alias component (aliasing is symmetric); paths
		// from p to x are unknown.
		fromP := pathmatrix.Entry{Alias: toP.Alias}
		st.PM.Set(p, x, fromP)
	}
	st.PM.Set(p, p, pathmatrix.Entry{Alias: pathmatrix.DefiniteAlias})
	return st, nil
}

// allForwardAlong reports whether every named field is declared forward
// along dim (and unambiguously so).
func (c *funcCtx) allForwardAlong(fields []string, dim string) bool {
	for _, f := range fields {
		fi := c.an.fields[f]
		if fi == nil || fi.Ambiguous || fi.Dir != adds.Forward || fi.Dim != dim {
			return false
		}
	}
	return true
}

// allMonotoneAlong reports whether every named field is declared with
// the given direction along dim.
func (c *funcCtx) allMonotoneAlong(fields []string, dim string, dir adds.Direction) bool {
	for _, f := range fields {
		fi := c.an.fields[f]
		if fi == nil || fi.Ambiguous || fi.Dir != dir || fi.Dim != dim {
			return false
		}
	}
	return true
}

// crossChildPossible reports whether an exact edge q->g == x makes x a
// possible alias of the freshly loaded q->f. It is possible when g is
// the same pointer-array field at an unknown index, or when g runs
// forward (or in an unknown direction) along a *different but
// dependent* dimension — the declaration does not forbid one node
// being, say, both a down-child and the leaves-successor of q when the
// dimensions are dependent. Uniqueness covers same-dimension siblings
// (left vs right), and declared independence covers independent
// dimensions.
func (c *funcCtx) crossChildPossible(decl *adds.Decl, eqx pathmatrix.Entry, pf *adds.PointerField, field string) bool {
	for _, d := range eqx.Descs {
		if !d.Exact {
			continue
		}
		g := d.Fields[0]
		if g == field {
			if pf.Count > 1 {
				return true // same array field, possibly the same index
			}
			continue // definite-target binding handled earlier
		}
		gi := c.an.fields[g]
		if gi == nil || gi.Ambiguous || gi.Dir == adds.Unknown {
			return true
		}
		if gi.Dir == adds.Backward {
			continue // a backward child sits on the other side of q
		}
		if gi.Dim == pf.Dim {
			continue // same-dimension sibling: uniqueness separates them
		}
		if !decl.Independent(gi.Dim, pf.Dim) {
			return true // dependent cross-dimension child may coincide
		}
	}
	return false
}

// indexKey renders an index expression for edge-identity comparison:
// plain variables and integer literals are comparable, anything else is
// the incomparable sentinel "?".
func indexKey(e lang.Expr) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *lang.Ident:
		return e.Name
	case *lang.IntLit:
		return fmt.Sprintf("#%d", e.Val)
	default:
		return "?"
	}
}

// store implements p->f = q and p->f = NULL (§3.3.1): overwrite the
// field, invalidate definite paths that may run through it, record the
// new edge, and validate the ADDS abstraction.
func (c *funcCtx) store(st *State, lhs *lang.FieldExpr, rhs lang.Expr, pos lang.Pos) (*State, error) {
	base := lhs.Base()
	if base == nil {
		return nil, fmt.Errorf("%s: chained store not normalized", pos)
	}
	p := base.Name
	elem, _ := lang.IsPointer(base.Type())
	decl := c.an.prog.Universe.Decl(elem)
	pf := decl.Pointer(lhs.Field)
	if pf == nil {
		return nil, fmt.Errorf("%s: %s has no pointer field %s", pos, elem, lhs.Field)
	}

	old := st.PM.Clone()

	// A store along this dimension may destroy the in-edges that
	// provenance facts rely on.
	st.ClearProvAlongDim(pf.Dim)

	// 1. Invalidate definite-path knowledge the store may falsify.
	// Exact f-edges out of handles that may alias p could be the very
	// edge being overwritten, so they go. Edges out of provably
	// different nodes survive, but longer (plus/star) paths using f go
	// everywhere: they might run through p's node mid-path.
	for _, a := range st.PM.Handles() {
		mayAliasP := a == p || old.Get(a, p).Alias != pathmatrix.NoAlias
		for _, b := range st.PM.Handles() {
			st.PM.Update(a, b, func(e *pathmatrix.Entry) {
				if mayAliasP {
					e.RemovePathsUsing(lhs.Field)
				} else {
					e.RemoveNonExactUsing(lhs.Field)
				}
			})
		}
	}
	// The f-edge of p's node (at this index, for arrays) is definitely
	// destroyed.
	idxKey := indexKey(lhs.Index)
	st.fixViolationsForStore(p, lhs.Field, idxKey, old)

	// 2. p->f = NULL only removes.
	if _, isNull := rhs.(*lang.NullLit); isNull {
		return st, nil
	}
	qid, ok := rhs.(*lang.Ident)
	if !ok {
		return nil, fmt.Errorf("%s: non-canonical store RHS %T (normalizer bug?)", pos, rhs)
	}
	q := qid.Name

	// 3. Validation, using relationships as they were before the store.
	if pf.Dir == adds.Forward {
		eqp := old.Get(q, p)
		cycle := eqp.Alias == pathmatrix.DefiniteAlias
		if !cycle {
			for _, d := range eqp.Descs {
				if c.allForwardAlong(d.Fields, pf.Dim) {
					cycle = true
					break
				}
			}
		}
		if q == p {
			cycle = true // self-loop
		}
		newID := c.an.newEdgeID()

		if cycle {
			key := ViolationKey{Type: elem, Dim: pf.Dim, Kind: Cycle}
			st.Violations[key] = &Violation{
				Key:  key,
				Refs: []EdgeRef{{Handle: p, Field: lhs.Field, Index: idxKey}},
				Pos:  pos,
			}
		}

		// Sharing: q (or a definite alias of q) already has an in-edge
		// along this unique dimension.
		if decl.UniqueAlong(pf.Dim) {
			var refs []EdgeRef
			for _, a := range old.Handles() {
				for _, b := range old.Handles() {
					if b != q && old.Get(b, q).Alias != pathmatrix.DefiniteAlias {
						continue
					}
					e := old.Get(a, b)
					for _, d := range e.Descs {
						if !d.Exact {
							continue
						}
						fi := c.an.fields[d.Fields[0]]
						if fi == nil || fi.Dim != pf.Dim || fi.Dir != adds.Forward {
							continue
						}
						// Skip the very edge being overwritten by this
						// store (p->f at the same index, through any
						// definite alias of p).
						if d.Fields[0] == lhs.Field && d.Index == idxKey && idxKey != "?" &&
							(a == p || old.Get(a, p).Alias == pathmatrix.DefiniteAlias) {
							continue
						}
						refs = append(refs, EdgeRef{Handle: a, Field: d.Fields[0], Index: d.Index})
					}
				}
			}
			if len(refs) > 0 {
				key := ViolationKey{Type: elem, Dim: pf.Dim, Kind: Sharing}
				st.Violations[key] = &Violation{
					Key:  key,
					Refs: append(refs, EdgeRef{Handle: p, Field: lhs.Field, Index: idxKey}),
					Pos:  pos,
				}
			}
		}

		// 4. Record the new edge p->f == q.
		st.PM.Update(p, q, func(e *pathmatrix.Entry) {
			e.AddDesc(pathmatrix.ExactIndexedDesc(lhs.Field, idxKey, newID))
		})
		return st, nil
	}

	// Unknown/backward direction: just record the edge.
	st.PM.Update(p, q, func(e *pathmatrix.Entry) {
		e.AddDesc(pathmatrix.ExactIndexedDesc(lhs.Field, idxKey, c.an.newEdgeID()))
	})
	return st, nil
}

// ---------------------------------------------------------------------------
// Calls

// call applies a callee's effect summary: pointer-field stores in the
// callee invalidate definite paths over those fields; violations active
// at the callee's exit propagate. Caller handles themselves cannot be
// moved by the callee (parameters are by value), so alias components
// survive.
func (c *funcCtx) call(st *State, call *lang.CallExpr) (*State, error) {
	// Argument expressions may themselves contain calls (normalizer
	// keeps single loads, but calls can nest in scalar args).
	for _, arg := range call.Args {
		if nested, ok := arg.(*lang.CallExpr); ok {
			var err error
			st, err = c.call(st, nested)
			if err != nil {
				return nil, err
			}
		}
	}
	if lang.Builtins[call.Func] != nil {
		return st, nil // builtins do not touch the heap
	}
	eff := c.an.effects[call.Func]
	if eff == nil {
		return nil, fmt.Errorf("%s: call to unknown function %q", call.Pos(), call.Func)
	}
	for f := range eff.storesFields {
		if fi := c.an.fields[f]; fi != nil {
			st.ClearProvAlongDim(fi.Dim)
		}
		for _, a := range st.PM.Handles() {
			for _, b := range st.PM.Handles() {
				st.PM.Update(a, b, func(e *pathmatrix.Entry) {
					e.RemovePathsUsing(f)
				})
			}
		}
	}
	// Propagate the callee's exit violations (from the most recent
	// analysis round; AnalyzeAll iterates until this stabilizes).
	for k, v := range c.an.exitViols[call.Func] {
		if _, ok := st.Violations[k]; !ok {
			nv := *v
			nv.Refs = nil // the witnessing edges are callee-local
			st.Violations[k] = &nv
		}
	}
	return st, nil
}

// bindCallResult establishes relationships for p = f(...): the result
// may alias anything of its own record type that the callee could reach.
func (c *funcCtx) bindCallResult(st *State, p string, call *lang.CallExpr) *State {
	st.PM.AddHandle(p)
	st.PM.Kill(p)
	elem := ""
	if call.Type() != nil {
		elem, _ = lang.IsPointer(call.Type())
	}
	if elem == "" {
		return st
	}
	for _, h := range st.PM.Handles() {
		if h == p {
			continue
		}
		// Only same-type handles can alias (PSL has no casts). We do
		// not track handle types in the matrix, so consult the
		// function's scope conservatively: treat every handle as
		// compatible. Precision loss is acceptable here; the paper
		// likewise treats returned pointers as possible aliases of the
		// structure they came from (root in BHL1).
		st.PM.Update(h, p, func(e *pathmatrix.Entry) { e.Alias = pathmatrix.PossibleAlias })
		st.PM.Update(p, h, func(e *pathmatrix.Entry) { e.Alias = pathmatrix.PossibleAlias })
	}
	return st
}

// ---------------------------------------------------------------------------
// Condition refinement

// refineCond sharpens the state under the assumption that cond evaluated
// to val: NULL comparisons kill handles, pointer equality merges or
// separates them.
func refineCond(st *State, cond lang.Expr, val bool) {
	be, ok := cond.(*lang.BinExpr)
	if !ok {
		return
	}
	switch be.Op {
	case lang.AND:
		if val {
			refineCond(st, be.X, true)
			refineCond(st, be.Y, true)
		}
		return
	case lang.OR:
		if !val {
			refineCond(st, be.X, false)
			refineCond(st, be.Y, false)
		}
		return
	case lang.EQ, lang.NEQ:
	default:
		return
	}
	// Normalize to "equal-holds" polarity.
	equalHolds := (be.Op == lang.EQ) == val

	xi, xIsIdent := be.X.(*lang.Ident)
	yi, yIsIdent := be.Y.(*lang.Ident)
	_, xIsNull := be.X.(*lang.NullLit)
	_, yIsNull := be.Y.(*lang.NullLit)

	switch {
	case xIsIdent && yIsNull:
		refineNull(st, xi, equalHolds)
	case yIsIdent && xIsNull:
		refineNull(st, yi, equalHolds)
	case xIsIdent && yIsIdent:
		if _, isPtr := lang.IsPointer(xi.Type()); !isPtr {
			return
		}
		if equalHolds {
			// x == y: definite alias.
			st.PM.Update(xi.Name, yi.Name, func(e *pathmatrix.Entry) { e.Alias = pathmatrix.DefiniteAlias })
			st.PM.Update(yi.Name, xi.Name, func(e *pathmatrix.Entry) { e.Alias = pathmatrix.DefiniteAlias })
		} else {
			// x != y: not aliases; possible weakens to no.
			st.PM.Update(xi.Name, yi.Name, func(e *pathmatrix.Entry) {
				if e.Alias == pathmatrix.PossibleAlias {
					e.Alias = pathmatrix.NoAlias
				}
			})
			st.PM.Update(yi.Name, xi.Name, func(e *pathmatrix.Entry) {
				if e.Alias == pathmatrix.PossibleAlias {
					e.Alias = pathmatrix.NoAlias
				}
			})
		}
	}
}

// refineNull applies x == NULL (isNull true) or x != NULL (false).
func refineNull(st *State, x *lang.Ident, isNull bool) {
	if _, isPtr := lang.IsPointer(x.Type()); !isPtr {
		return
	}
	if isNull && st.PM.HasHandle(x.Name) {
		// x is NULL here: it aliases nothing.
		st.Retarget(x.Name, st.PM)
		st.PM.Kill(x.Name)
	}
}

// ---------------------------------------------------------------------------
// Loops

// PrimeSuffix is appended to a variable name to form its primed handle
// (the variable's value in the previous loop iteration).
const PrimeSuffix = "'"

// assignedPointerVars collects pointer variables assigned anywhere in
// the block (the handles that need primes).
func assignedPointerVars(b *lang.Block) []string {
	seen := map[string]bool{}
	var out []string
	lang.Walk(b, func(s lang.Stmt) bool {
		as, ok := s.(*lang.AssignStmt)
		if !ok {
			return true
		}
		id, ok := as.LHS.(*lang.Ident)
		if !ok {
			return true
		}
		if _, isPtr := lang.IsPointer(id.Type()); !isPtr {
			return true
		}
		if !seen[id.Name] {
			seen[id.Name] = true
			out = append(out, id.Name)
		}
		return true
	})
	return out
}

// whileLoop analyzes "while cond { body }" to a fixed point, tracking
// primed handles for the paper's previous-iteration entries.
func (c *funcCtx) whileLoop(w *lang.WhileStmt, st *State) (*State, error) {
	st, err := c.scalarEffects(st, w.Cond)
	if err != nil {
		return nil, err
	}
	vars := assignedPointerVars(w.Body)
	head := st.Clone()
	for _, v := range vars {
		if !head.PM.HasHandle(v) {
			continue
		}
		prime := v + PrimeSuffix
		head.PM.AddHandle(prime)
		// Before the first iteration the primed handle denotes the same
		// value as the variable itself.
		head.PM.Kill(prime)
		head.PM.CopyRelationships(prime, v)
	}

	for iter := 0; ; iter++ {
		if iter > c.an.MaxLoopIterations {
			return nil, fmt.Errorf("%s: loop analysis did not converge after %d iterations", w.Pos(), iter)
		}
		bodyIn := head.Clone()
		refineCond(bodyIn, w.Cond, true)
		bodyOut, err := c.block(w.Body, bodyIn)
		if err != nil {
			return nil, err
		}
		if bodyOut == nil {
			// Body always returns; the loop runs at most once.
			break
		}
		// Record the body-exit state (joined across iterations) before
		// the primes are rebound: this is where p' vs p is meaningful.
		if prev, ok := c.fr.LoopBodyExit[w]; ok {
			c.fr.LoopBodyExit[w] = joinStates(prev, bodyOut)
		} else {
			c.fr.LoopBodyExit[w] = bodyOut.Clone()
		}
		// Back edge: the previous-iteration handles take the variables'
		// current values.
		for _, v := range vars {
			prime := v + PrimeSuffix
			if !bodyOut.PM.HasHandle(prime) || !bodyOut.PM.HasHandle(v) {
				continue
			}
			bodyOut.PM.Kill(prime)
			bodyOut.PM.CopyRelationships(prime, v)
		}
		next := joinStates(head, bodyOut)
		if equalStates(next, head) {
			break
		}
		head = next
	}
	c.fr.LoopInvariant[w] = head.Clone()

	exit := head.Clone()
	refineCond(exit, w.Cond, false)
	for _, v := range vars {
		exit.PM.RemoveHandle(v + PrimeSuffix)
	}
	return exit, nil
}

// forLoop analyzes counted for/forall loops to a fixed point. The loop
// variable is scalar, so only the body's pointer statements matter. The
// loop may execute zero times, so the entry state joins in.
func (c *funcCtx) forLoop(f *lang.ForStmt, st *State) (*State, error) {
	st, err := c.scalarEffects(st, f.From)
	if err != nil {
		return nil, err
	}
	st, err = c.scalarEffects(st, f.To)
	if err != nil {
		return nil, err
	}
	head := st.Clone()
	for iter := 0; ; iter++ {
		if iter > c.an.MaxLoopIterations {
			return nil, fmt.Errorf("%s: loop analysis did not converge after %d iterations", f.Pos(), iter)
		}
		bodyOut, err := c.block(f.Body, head.Clone())
		if err != nil {
			return nil, err
		}
		if bodyOut == nil {
			break
		}
		next := joinStates(head, bodyOut)
		if equalStates(next, head) {
			break
		}
		head = next
	}
	c.fr.LoopInvariant[f] = head.Clone()
	return head, nil
}
