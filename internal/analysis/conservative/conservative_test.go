package conservative

import (
	"strings"
	"testing"

	"repro/internal/adds"
	"repro/internal/lang"
)

const scaleSrc = adds.OneWayListSrc + `
procedure scale(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    p->data = p->data * c;
    p = p->next;
  }
}

procedure counter(int n) {
  var int i = 0;
  while i < n {
    i = i + 1;
  }
}
`

func TestAlwaysRejectsPointerLoops(t *testing.T) {
	prog := lang.MustParse(scaleSrc)
	a := New(prog)
	if a.Name() != "conservative" {
		t.Errorf("name = %q", a.Name())
	}
	v, err := a.LoopParallelizable("scale", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Parallelizable {
		t.Error("the conservative baseline must reject every pointer loop")
	}
	if !strings.Contains(v.String(), "may alias") {
		t.Errorf("reason: %s", v)
	}
}

func TestScalarLoopOutOfScope(t *testing.T) {
	prog := lang.MustParse(scaleSrc)
	a := New(prog)
	v, err := a.LoopParallelizable("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Parallelizable {
		t.Error("baseline never parallelizes")
	}
	if !strings.Contains(v.Reason, "scalar loop") {
		t.Errorf("reason: %s", v.Reason)
	}
}

func TestMayAlias(t *testing.T) {
	prog := lang.MustParse(scaleSrc)
	a := New(prog)
	fn := prog.Func("scale")
	listT := lang.PointerTo("OneWayList")
	otherT := lang.PointerTo("Other")
	if !a.MayAlias(fn, listT, listT) {
		t.Error("same-type pointers may alias")
	}
	if a.MayAlias(fn, listT, otherT) {
		t.Error("cross-type aliasing is impossible even conservatively")
	}
	if a.MayAlias(fn, lang.Int, listT) {
		t.Error("scalars never alias pointers")
	}
}

func TestInductionNeverAdvances(t *testing.T) {
	prog := lang.MustParse(scaleSrc)
	a := New(prog)
	fn := prog.Func("scale")
	var loop *lang.WhileStmt
	lang.Walk(fn.Body, func(s lang.Stmt) bool {
		if w, ok := s.(*lang.WhileStmt); ok {
			loop = w
			return false
		}
		return true
	})
	if a.InductionStrictlyAdvances(fn, loop, "p") {
		t.Error("baseline can never prove advancement")
	}
}

func TestErrors(t *testing.T) {
	prog := lang.MustParse(scaleSrc)
	a := New(prog)
	if _, err := a.LoopParallelizable("nosuch", 0); err == nil {
		t.Error("unknown function must error")
	}
	if _, err := a.LoopParallelizable("scale", 7); err == nil {
		t.Error("unknown loop must error")
	}
}
