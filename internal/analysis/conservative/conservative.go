// Package conservative is the baseline the paper ascribes to
// "conventional parallelizing compilers" (§2.1 approach (1), §4.2):
// arrays get real analysis, but every pair of pointers of compatible
// type may alias, and a pointer-chasing advance p = p->next may always
// return an already-visited node. Under this baseline no pointer loop
// is ever parallelizable.
package conservative

import (
	"fmt"

	"repro/internal/lang"
)

// Analysis is the (trivially) conservative alias oracle.
type Analysis struct {
	prog *lang.Program
}

// New creates the baseline for a program.
func New(prog *lang.Program) *Analysis {
	return &Analysis{prog: prog}
}

// Name identifies the baseline in reports.
func (a *Analysis) Name() string { return "conservative" }

// MayAlias reports whether two pointer variables may alias: always true
// for same-record-type pointers (PSL has no casts, so cross-type
// aliasing is impossible even conservatively).
func (a *Analysis) MayAlias(fn *lang.FuncDecl, x, y lang.Type) bool {
	ex, okx := lang.IsPointer(x)
	ey, oky := lang.IsPointer(y)
	if !okx || !oky {
		return false
	}
	return ex == ey
}

// InductionStrictlyAdvances always answers false: without structure
// information, p = p->next may revisit any node.
func (a *Analysis) InductionStrictlyAdvances(fn *lang.FuncDecl, loop *lang.WhileStmt, v string) bool {
	return false
}

// Verdict is a baseline parallelizability report.
type Verdict struct {
	Func           string
	LoopIndex      int
	Parallelizable bool
	Reason         string
}

// String renders the verdict.
func (v *Verdict) String() string {
	s := "NOT PARALLELIZABLE"
	if v.Parallelizable {
		s = "PARALLELIZABLE"
	}
	return fmt.Sprintf("[conservative] %s loop #%d: %s (%s)", v.Func, v.LoopIndex, s, v.Reason)
}

// LoopParallelizable reports the baseline verdict for the n-th while
// loop of fn: never parallelizable when the loop touches pointers.
func (a *Analysis) LoopParallelizable(fnName string, loopIndex int) (*Verdict, error) {
	fn := a.prog.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("conservative: no function %q", fnName)
	}
	count := 0
	var loop *lang.WhileStmt
	lang.Walk(fn.Body, func(s lang.Stmt) bool {
		if w, ok := s.(*lang.WhileStmt); ok {
			if count == loopIndex {
				loop = w
				return false
			}
			count++
		}
		return true
	})
	if loop == nil {
		return nil, fmt.Errorf("conservative: %s has no loop #%d", fnName, loopIndex)
	}
	usesPointers := false
	lang.Walk(loop.Body, func(s lang.Stmt) bool {
		lang.WalkExprs(s, func(e lang.Expr) {
			if _, ok := e.(*lang.FieldExpr); ok {
				usesPointers = true
			}
			if id, ok := e.(*lang.Ident); ok {
				if _, isPtr := lang.IsPointer(id.Type()); isPtr {
					usesPointers = true
				}
			}
		})
		return !usesPointers
	})
	if !usesPointers {
		return &Verdict{Func: fnName, LoopIndex: loopIndex, Parallelizable: false,
			Reason: "scalar loop: out of scope for the pointer baseline"}, nil
	}
	return &Verdict{Func: fnName, LoopIndex: loopIndex, Parallelizable: false,
		Reason: "all pointers of a type may alias; p = p->next may revisit any node"}, nil
}
