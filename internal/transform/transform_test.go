package transform

import (
	"strings"
	"testing"

	"repro/internal/adds"
	"repro/internal/interp"
	"repro/internal/lang"
)

const scaleSrc = adds.OneWayListSrc + `
function OneWayList * build(int n) {
  var OneWayList *head = NULL;
  var int i = n;
  while i > 0 {
    var OneWayList *node = new OneWayList;
    node->data = i;
    node->next = head;
    head = node;
    i = i - 1;
  }
  return head;
}

procedure scale(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    p->data = p->data * c;
    p = p->next;
  }
}

function int total(OneWayList *head) {
  var int s = 0;
  var OneWayList *p = head;
  while p != NULL {
    s = s + p->data;
    p = p->next;
  }
  return s;
}

function int main(int n, int c) {
  var OneWayList *h = build(n);
  scale(h, c);
  return total(h);
}
`

func TestStripMineShape(t *testing.T) {
	prog := lang.MustParse(scaleSrc)
	res, err := StripMine(prog, "scale", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The original program is untouched.
	if prog.Func(res.Helper) != nil {
		t.Error("StripMine must not modify the input program")
	}
	helper := res.Program.Func(res.Helper)
	if helper == nil {
		t.Fatal("helper procedure missing")
	}
	// Helper signature: (_pe int, p OneWayList*, c int) — frees sorted.
	if len(helper.Params) != 3 {
		t.Fatalf("helper params = %+v", helper.Params)
	}
	if helper.Params[0].Name != "_pe" || helper.Params[1].Name != "p" {
		t.Errorf("params = %+v", helper.Params)
	}
	text := lang.FormatFunc(res.Program.Func("scale"))
	if !strings.Contains(text, "forall") {
		t.Errorf("transformed scale lacks forall:\n%s", text)
	}
	// FOR1: serial advance by PEs steps.
	if !strings.Contains(text, "p = p->next;") {
		t.Errorf("missing serial advance:\n%s", text)
	}
	// The helper contains FOR2 (skip-ahead) and the guarded body.
	htext := lang.FormatFunc(helper)
	if !strings.Contains(htext, "for _k = 1 to _pe") {
		t.Errorf("missing FOR2 skip loop:\n%s", htext)
	}
	if !strings.Contains(htext, "if (p != NULL)") {
		t.Errorf("missing NULL guard:\n%s", htext)
	}
}

func TestStripMineSemantics(t *testing.T) {
	prog := lang.MustParse(scaleSrc)
	want, _, err := interp.Run(prog, interp.Config{Seed: 1}, "main", interp.IntVal(37), interp.IntVal(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, pes := range []int{1, 2, 4, 7, 16} {
		res, err := StripMine(prog, "scale", 0, pes)
		if err != nil {
			t.Fatalf("pes=%d: %v", pes, err)
		}
		got, _, err := interp.Run(res.Program, interp.Config{Seed: 1}, "main", interp.IntVal(37), interp.IntVal(3))
		if err != nil {
			t.Fatalf("pes=%d: %v", pes, err)
		}
		if got.I != want.I {
			t.Errorf("pes=%d: result %d, want %d", pes, got.I, want.I)
		}
	}
}

func TestStripMineRejectsBadLoop(t *testing.T) {
	src := adds.OneWayListSrc + `
function int sum(OneWayList *head) {
  var int s = 0;
  var OneWayList *p = head;
  while p != NULL {
    s = s + p->data;
    p = p->next;
  }
  return s;
}`
	prog := lang.MustParse(src)
	if _, err := StripMine(prog, "sum", 0, 4); err == nil {
		t.Error("reduction loop must be refused")
	} else if !strings.Contains(err.Error(), "not parallelizable") {
		t.Errorf("error = %v", err)
	}
}

func TestStripMineRejectsUnannotated(t *testing.T) {
	src := adds.ListNodeSrc + `
procedure scale(ListNode *head, int c) {
  var ListNode *p = head;
  while p != NULL {
    p->coef = p->coef * c;
    p = p->next;
  }
}`
	prog := lang.MustParse(src)
	if _, err := StripMine(prog, "scale", 0, 4); err == nil {
		t.Error("unannotated structure must be refused")
	}
}

func TestStripMineBadArgs(t *testing.T) {
	prog := lang.MustParse(scaleSrc)
	if _, err := StripMine(prog, "scale", 0, 0); err == nil {
		t.Error("pes=0 must fail")
	}
	if _, err := StripMine(prog, "nosuch", 0, 2); err == nil {
		t.Error("unknown function must fail")
	}
	if _, err := StripMine(prog, "scale", 5, 2); err == nil {
		t.Error("unknown loop index must fail")
	}
}

func TestUnrollSemantics(t *testing.T) {
	prog := lang.MustParse(scaleSrc)
	want, _, err := interp.Run(prog, interp.Config{Seed: 1}, "main", interp.IntVal(29), interp.IntVal(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, factor := range []int{2, 3, 4, 8} {
		un, err := Unroll(prog, "scale", 0, factor)
		if err != nil {
			t.Fatalf("factor=%d: %v", factor, err)
		}
		got, _, err := interp.Run(un, interp.Config{Seed: 1}, "main", interp.IntVal(29), interp.IntVal(2))
		if err != nil {
			t.Fatalf("factor=%d: %v", factor, err)
		}
		if got.I != want.I {
			t.Errorf("factor=%d: result %d, want %d", factor, got.I, want.I)
		}
	}
}

func TestUnrollShape(t *testing.T) {
	prog := lang.MustParse(scaleSrc)
	un, err := Unroll(prog, "scale", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	text := lang.FormatFunc(un.Func("scale"))
	// Three advances per trip.
	if n := strings.Count(text, "p = p->next;"); n != 3 {
		t.Errorf("expected 3 advances, found %d:\n%s", n, text)
	}
	// Two guards (first copy unguarded).
	if n := strings.Count(text, "if (p != NULL)"); n != 2 {
		t.Errorf("expected 2 guards, found %d:\n%s", n, text)
	}
	if _, err := Unroll(prog, "scale", 0, 1); err == nil {
		t.Error("factor < 2 must fail")
	}
}

func TestStripMineSimulatedSpeedsUp(t *testing.T) {
	// Strip-mining pays off when per-node processing dominates the
	// traversal (the paper's footnote 1), so give each node real work.
	src := adds.OneWayListSrc + `
function OneWayList * build(int n) {
  var OneWayList *head = NULL;
  var int i = n;
  while i > 0 {
    var OneWayList *node = new OneWayList;
    node->data = i;
    node->next = head;
    head = node;
    i = i - 1;
  }
  return head;
}

procedure crunch(OneWayList *head) {
  var OneWayList *p = head;
  while p != NULL {
    var int acc = 0;
    for k = 1 to 300 {
      acc = acc + k * p->data;
    }
    p->data = acc;
    p = p->next;
  }
}

procedure main(int n) {
  var OneWayList *h = build(n);
  crunch(h);
}
`
	prog := lang.MustParse(src)
	run := func(p *lang.Program, pes int) int64 {
		ip := interp.New(p, interp.Config{Mode: interp.Simulated, PEs: pes, Seed: 1})
		if _, err := ip.Call("main", interp.IntVal(200)); err != nil {
			t.Fatal(err)
		}
		return ip.Stats().Cycles
	}
	seq := run(prog, 1)
	res, err := StripMine(prog, "crunch", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	par := run(res.Program, 4)
	if par >= seq {
		t.Errorf("strip-mined simulated time %d should beat sequential %d", par, seq)
	}
	speedup := float64(seq) / float64(par)
	if speedup >= 4.0 {
		t.Errorf("speedup %.2f must be sublinear on 4 PEs", speedup)
	}
	t.Logf("seq=%d par4=%d speedup=%.2f", seq, par, speedup)
}
