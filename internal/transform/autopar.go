// The auto-parallelization planner: the layer that turns the paper's
// per-loop machinery into a push-button whole-program transformation.
// Everywhere else in this repository a caller hand-picks a function
// name, a loop index, and a strip width and calls StripMine;
// AutoParallelize instead walks every function of a checked program,
// runs the dependence test on every while loop, strip-mines each
// approved loop, and returns a Plan that says what it did and — the
// paper's real deliverable — *why* every other loop was rejected.
//
// Mechanics worth knowing:
//
//   - Loops are identified by their source position, not their index.
//     Strip-mining loop k of a function moves any while loops nested
//     in its body into the generated helper procedure, shifting the
//     indices of every later loop in that function; positions survive
//     the move, so the planner's bookkeeping does not. Position keying
//     demands distinct positions: a program whose loops conflate (a
//     hand-built AST with all-zero positions) is rejected up front with
//     a DuplicateLoopPosError.
//
//   - Planning is incremental. The input is cloned once; every rewrite
//     then edits that working program in place, touching exactly two
//     functions (the rewritten one and its appended helper), and the
//     memoized analyses — analysis.Cache for path matrices,
//     effects.Analyzer.Update for effect summaries — re-derive only the
//     touched functions plus whatever the summary cascade reaches.
//     Dependence verdicts are cached per loop and invalidated only for
//     loops in re-analyzed functions, so a rewrite never re-tests the
//     rest of the program; see analysis.Cache for the argument that a
//     rewrite cannot change the dependence facts of an untouched
//     function. The scan converges because a strip-mined loop can never
//     be approved again (its body no longer ends with the advance) and
//     no rewrite creates new while loops.
//
//   - Within a pass, the dependence tests of the candidate loops are
//     independent read-only queries, so they run in parallel on
//     parexec's own scheduling machinery (parexec.ForEach) — the tool
//     eating its own cooking. Verdicts are consumed strictly in scan
//     order, so the plan (and the transformed program) is deterministic
//     and byte-identical to what the serial full-restart planner
//     produces.
//
//   - Helper procedures synthesized by the rewrites are not re-planned:
//     their loops already run inside parallel iterations, and nesting
//     foralls would only oversubscribe the worker pool. A loop that
//     moves into a helper is reported as absorbed, not rejected.
package transform

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/compile"
	"repro/internal/depend"
	"repro/internal/effects"
	"repro/internal/lang"
	"repro/internal/parexec"
)

// DefaultWidth is the planner's width policy when the caller has no
// opinion: 4 forall iterations per PE per barrier — wide enough that
// the scheduling policy owns the iteration→PE map (the R2 convention),
// narrow enough that the FOR2 skip-ahead (quadratic in width) stays
// modest. pes <= 0 means "this host": runtime.GOMAXPROCS.
func DefaultWidth(pes int) int {
	if pes <= 0 {
		pes = runtime.GOMAXPROCS(0)
	}
	return 4 * pes
}

// DuplicateLoopPosError reports that two while loops of the input
// program share one source position, so the planner's position-keyed
// bookkeeping cannot tell them apart. Programs built by lang.Parse give
// every loop a distinct position; the usual way to hit this is a
// hand-built AST whose loops all carry the zero position.
type DuplicateLoopPosError struct {
	// Pos is the shared position; FuncA/FuncB name the functions holding
	// the two conflated loops (equal when both loops share a function).
	Pos   lang.Pos
	FuncA string
	FuncB string
}

// Error renders the conflict.
func (e *DuplicateLoopPosError) Error() string {
	return fmt.Sprintf("transform: loops in %s and %s share source position %s; the planner keys loops by position — give hand-built AST loops distinct positions",
		e.FuncA, e.FuncB, e.Pos)
}

// LoopPlan is one while loop's entry in a Plan: where the loop was
// when planning started, the dependence verdict, and what the planner
// did about it.
type LoopPlan struct {
	// Func and Index locate the loop in the *input* program (Index
	// counts while loops in lang.Walk order, the LoopReports/StripMine
	// convention — so the coordinates are valid against the caller's
	// own source even after sibling rewrites shifted the working
	// program's indices); Pos is its source position.
	Func  string
	Index int
	Pos   lang.Pos
	// Parallelized marks an approved, strip-mined loop; Helper is its
	// generated iteration procedure and Width its strip width.
	Parallelized bool
	Helper       string
	Width        int
	// Absorbed marks a loop nested in the body of an approved loop: it
	// moved into AbsorbedInto's body and runs serially inside the
	// parallel iterations — neither approved nor rejected on its own.
	Absorbed     bool
	AbsorbedInto string
	// Vectorized marks an approved loop whose strip additionally lowers
	// to a batched SPMD kernel (the `kernel` engine's vector path);
	// VectorReason gives the classifier's concrete why-not for every
	// approved loop that stays scalar ("body calls function f",
	// "pointer-chasing access", "allocates", ...).
	Vectorized   bool
	VectorReason string
	// Report is the dependence verdict (nil for absorbed loops that
	// moved before the scan reached them).
	Report *depend.Report
}

// ReasonText joins every reason of the loop's dependence report with
// "; " — all of them, since a report may carry several facts (the
// success case lists three) and dropping any hides the verdict's
// grounds. Absorbed loops without a report render a fixed placeholder.
func (lp *LoopPlan) ReasonText() string {
	if lp.Report == nil || len(lp.Report.Reasons) == 0 {
		return "loop not analyzable"
	}
	return strings.Join(lp.Report.Reasons, "; ")
}

// String renders one plan line.
func (lp *LoopPlan) String() string {
	at := fmt.Sprintf("%s#%d (line %d)", lp.Func, lp.Index, lp.Pos.Line)
	switch {
	case lp.Parallelized:
		vec := fmt.Sprintf("vectorized: no (%s)", lp.VectorReason)
		if lp.Vectorized {
			vec = "vectorized: kernel"
		}
		return fmt.Sprintf("PARALLELIZED %-28s -> %s, width %d — %s", at, lp.Helper, lp.Width, vec)
	case lp.Absorbed:
		return fmt.Sprintf("absorbed     %-28s runs serially inside %s", at, lp.AbsorbedInto)
	default:
		return fmt.Sprintf("rejected     %-28s %s", at, lp.ReasonText())
	}
}

// Plan is the planner's report: the transformed program plus one entry
// per while loop saying what happened to it and why.
type Plan struct {
	// Program is the fully transformed program (the input program when
	// nothing was approved; the input is never modified).
	Program *lang.Program
	// Width is the strip width applied to every approved loop.
	Width int
	// Loops lists every while loop of the planned functions in program
	// order.
	Loops []*LoopPlan
	// Parallelized counts the approved (strip-mined) loops.
	Parallelized int
}

// Summary is the one-line form: "parallelized 2/7 loops (width 16):
// timestep#0, timestep#1".
func (p *Plan) Summary() string {
	var done []string
	for _, lp := range p.Loops {
		if lp.Parallelized {
			done = append(done, fmt.Sprintf("%s#%d", lp.Func, lp.Index))
		}
	}
	if len(done) == 0 {
		return fmt.Sprintf("parallelized 0/%d loops (width %d)", len(p.Loops), p.Width)
	}
	return fmt.Sprintf("parallelized %d/%d loops (width %d): %s",
		p.Parallelized, len(p.Loops), p.Width, strings.Join(done, ", "))
}

// String renders the full per-loop report, rejection reasons included.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "auto-parallelization plan — %s\n", p.Summary())
	for _, lp := range p.Loops {
		fmt.Fprintf(&b, "  %s\n", lp)
	}
	return strings.TrimRight(b.String(), "\n")
}

// AutoParallelize plans and transforms a whole checked program: every
// while loop of every function is put through the dependence test, and
// every approved loop is strip-mined with the given width (width <= 0
// selects DefaultWidth for this host). The input program is not
// modified. Planning is incremental — each rewrite re-analyzes only the
// functions it touched (see the package comment and analysis.Cache) —
// and the per-loop dependence tests of a pass run in parallel; the
// resulting program is exactly what the equivalent sequence of
// hand-written StripMine calls would produce, in program order.
func AutoParallelize(prog *lang.Program, width int) (*Plan, error) {
	if width <= 0 {
		width = DefaultWidth(0)
	}
	plan := &Plan{Width: width}

	// The functions to plan: a snapshot of what exists before any
	// rewrite. Helpers synthesized below are appended after these and
	// never revisited. origIndex remembers every loop's (function,
	// index) in the *input* program — rewrites shift indices (nested
	// loops move into helpers), and plan entries must report the
	// coordinates the caller's own program uses. Position keying is only
	// sound when positions are distinct, so conflation is an error, not
	// a silent mis-plan.
	names := make([]string, 0, len(prog.Funcs))
	type loopAt struct {
		fn    string
		index int
	}
	origIndex := map[lang.Pos]loopAt{}
	for _, f := range prog.Funcs {
		names = append(names, f.Name)
		for i, loop := range whileLoops(f.Body) {
			if prev, dup := origIndex[loop.Pos()]; dup {
				return nil, &DuplicateLoopPosError{Pos: loop.Pos(), FuncA: prev.fn, FuncB: f.Name}
			}
			origIndex[loop.Pos()] = loopAt{fn: f.Name, index: i}
		}
	}
	newLoopPlan := func(pos lang.Pos, fn string, index int) (*LoopPlan, error) {
		if at, ok := origIndex[pos]; ok {
			fn, index = at.fn, at.index
		}
		if index < 0 {
			// Every plannable loop exists in the input program and was
			// indexed above; reaching here means the bookkeeping lost a
			// loop, and an entry with Index -1 would point the caller at
			// nothing.
			return nil, fmt.Errorf("transform: internal: loop at %s in %s has no input-program index", pos, fn)
		}
		return &LoopPlan{Func: fn, Index: index, Pos: pos}, nil
	}

	// One clone up front; every rewrite edits cur in place so that
	// untouched functions keep their AST identity — the key the memoized
	// analyses are filed under.
	cur := prog.Clone()
	cache, err := analysis.NewCache(cur)
	if err != nil {
		return nil, err
	}
	eff := effects.NewAnalyzer(cur)

	// seen keys loop identity by source position (verified distinct
	// above; positions survive the move into a helper). verdicts caches
	// dependence reports by position until a rewrite dirties the
	// enclosing function.
	seen := map[lang.Pos]*LoopPlan{}
	verdicts := map[lang.Pos]*depend.Report{}
	for {
		// Candidates, in scan order: every not-yet-settled loop of the
		// planned functions.
		type cand struct {
			name  string
			index int
			loop  *lang.WhileStmt
		}
		var cands []cand
		for _, name := range names {
			fn := cur.Func(name)
			for i, loop := range whileLoops(fn.Body) {
				if lp := seen[loop.Pos()]; lp != nil && (lp.Parallelized || lp.Absorbed) {
					continue
				}
				cands = append(cands, cand{name: name, index: i, loop: loop})
			}
		}

		// Test every candidate without a cached verdict — in parallel,
		// on the executor's own pool: each test is a read-only query of
		// the shared program, analysis cache, and effect summaries.
		var need []int
		for k, c := range cands {
			if _, ok := verdicts[c.loop.Pos()]; !ok {
				need = append(need, k)
			}
		}
		reports := make([]*depend.Report, len(cands))
		errs := make([]error, len(cands))
		parexec.ForEach(0, len(need), func(j int) {
			k := need[j]
			c := cands[k]
			if containsForall(c.loop.Body) {
				// Never nest parallel regions: a loop whose body already
				// holds a forall (an inner loop this planner approved on
				// an earlier pass, or surface-syntax forall) stays serial
				// — the pool is already busy inside it.
				reports[k] = &depend.Report{Func: c.name, Loop: c.loop,
					Reasons: []string{"body already contains a parallel forall (the planner does not nest parallelism)"}}
				return
			}
			reports[k], errs[k] = depend.AnalyzeLoop(cur, cache.Func(c.name), eff, c.name, c.index)
		})
		for _, k := range need {
			if errs[k] != nil {
				return nil, errs[k]
			}
			verdicts[cands[k].loop.Pos()] = reports[k]
		}

		// Consume verdicts in scan order; the first approval rewrites in
		// place and ends the pass (the rewrite dirties its function, so
		// later siblings re-test against the post-rewrite program).
		transformed := false
		for _, c := range cands {
			rep := verdicts[c.loop.Pos()]
			lp := seen[c.loop.Pos()]
			if lp == nil {
				if lp, err = newLoopPlan(c.loop.Pos(), c.name, c.index); err != nil {
					return nil, err
				}
				seen[c.loop.Pos()] = lp
				plan.Loops = append(plan.Loops, lp)
			}
			lp.Report = rep
			if !rep.Parallelizable {
				continue
			}
			// Snapshot the function's loop list and the approved body's
			// nested loops before the in-place rewrite replaces the body.
			loops := whileLoops(cur.Func(c.name).Body)
			inners := whileLoops(c.loop.Body)
			helper, err := stripMineInPlace(cur, rep, c.name, c.index, width)
			if err != nil {
				return nil, err
			}
			lp.Parallelized = true
			lp.Helper = helper
			lp.Width = width
			plan.Parallelized++
			// Loops nested in the approved body move into the helper
			// and run serially inside the parallel iterations; record
			// them so the plan accounts for every loop of the input.
			for _, inner := range inners {
				ilp := seen[inner.Pos()]
				if ilp == nil {
					if ilp, err = newLoopPlan(inner.Pos(), c.name, indexOfLoop(loops, inner)); err != nil {
						return nil, err
					}
					seen[inner.Pos()] = ilp
					plan.Loops = append(plan.Loops, ilp)
				}
				ilp.Absorbed = true
				ilp.AbsorbedInto = helper
			}
			// Re-derive the memoized analyses for the touched functions
			// and drop the cached verdicts of every loop whose facts the
			// rewrite could have reached.
			reanalyzed, err := cache.Update(c.name, helper)
			if err != nil {
				return nil, err
			}
			for _, fn := range append(reanalyzed, eff.Update(c.name, helper)...) {
				if f := cur.Func(fn); f != nil {
					for _, loop := range whileLoops(f.Body) {
						delete(verdicts, loop.Pos())
					}
				}
			}
			transformed = true
			break
		}
		if !transformed {
			break
		}
	}
	plan.Program = cur
	annotateVectorVerdicts(plan)
	return plan, nil
}

// annotateVectorVerdicts joins the kernel classifier's per-strip
// verdicts onto the plan: lower the transformed program through the
// bytecode pipeline (whose forall lowering runs the classifier; see
// bytecode/kernel.go) and match strips to plan entries by source
// position — transform stamps each generated forall with the original
// while loop's position, the same key the profiler joins on. The
// verdict is advisory reporting; lowering failure therefore degrades
// to a stated reason rather than failing the plan.
func annotateVectorVerdicts(plan *Plan) {
	if plan.Parallelized == 0 {
		return
	}
	fail := func(err error) {
		for _, lp := range plan.Loops {
			if lp.Parallelized {
				lp.VectorReason = fmt.Sprintf("kernel lowering unavailable: %v", err)
			}
		}
	}
	cp, err := compile.Compile(plan.Program)
	if err != nil {
		fail(err)
		return
	}
	bp, err := bytecode.Compile(cp)
	if err != nil {
		fail(err)
		return
	}
	byPos := map[lang.Pos]*bytecode.ForallSite{}
	for _, f := range bp.Funcs {
		for i := range f.Foralls {
			byPos[f.Foralls[i].Pos] = &f.Foralls[i]
		}
	}
	for _, lp := range plan.Loops {
		if !lp.Parallelized {
			continue
		}
		if s, ok := byPos[lp.Pos]; ok {
			lp.Vectorized = s.Kernel != nil
			lp.VectorReason = s.VectorReason
		} else {
			lp.VectorReason = "kernel lowering unavailable: no forall at the loop's position"
		}
	}
}

// whileLoops enumerates the while loops under a block in lang.Walk
// order — the same order LoopReports and FindLoop count by.
func whileLoops(body *lang.Block) []*lang.WhileStmt {
	var loops []*lang.WhileStmt
	lang.Walk(body, func(s lang.Stmt) bool {
		if w, ok := s.(*lang.WhileStmt); ok {
			loops = append(loops, w)
		}
		return true
	})
	return loops
}

// indexOfLoop locates w in loops; -1 when absent (newLoopPlan treats a
// position missing from the input index as an internal error rather
// than emitting an entry with a negative index).
func indexOfLoop(loops []*lang.WhileStmt, w *lang.WhileStmt) int {
	for i, l := range loops {
		if l == w {
			return i
		}
	}
	return -1
}

// containsForall reports whether any statement under body is a
// parallel for (a forall region).
func containsForall(body *lang.Block) bool {
	found := false
	lang.Walk(body, func(s lang.Stmt) bool {
		if f, ok := s.(*lang.ForStmt); ok && f.Parallel {
			found = true
		}
		return !found
	})
	return found
}
