// The auto-parallelization planner: the layer that turns the paper's
// per-loop machinery into a push-button whole-program transformation.
// Everywhere else in this repository a caller hand-picks a function
// name, a loop index, and a strip width and calls StripMine;
// AutoParallelize instead walks every function of a checked program,
// runs the dependence test on every while loop, strip-mines each
// approved loop, and returns a Plan that says what it did and — the
// paper's real deliverable — *why* every other loop was rejected.
//
// Mechanics worth knowing:
//
//   - Loops are identified by their source position, not their index.
//     Strip-mining loop k of a function moves any while loops nested
//     in its body into the generated helper procedure, shifting the
//     indices of every later loop in that function; positions survive
//     both the program clone and the move, so the planner's bookkeeping
//     does not.
//   - After each rewrite the whole program is re-analyzed and the scan
//     restarts: a verdict computed against the pre-rewrite program is
//     never trusted to license a transformation of the post-rewrite
//     one. The scan converges because a strip-mined loop can never be
//     approved again (its body no longer ends with the advance) and no
//     rewrite creates new while loops.
//   - Helper procedures synthesized by the rewrites are not re-planned:
//     their loops already run inside parallel iterations, and nesting
//     foralls would only oversubscribe the worker pool. A loop that
//     moves into a helper is reported as absorbed, not rejected.
package transform

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/analysis"
	"repro/internal/depend"
	"repro/internal/effects"
	"repro/internal/lang"
)

// DefaultWidth is the planner's width policy when the caller has no
// opinion: 4 forall iterations per PE per barrier — wide enough that
// the scheduling policy owns the iteration→PE map (the R2 convention),
// narrow enough that the FOR2 skip-ahead (quadratic in width) stays
// modest. pes <= 0 means "this host": runtime.GOMAXPROCS.
func DefaultWidth(pes int) int {
	if pes <= 0 {
		pes = runtime.GOMAXPROCS(0)
	}
	return 4 * pes
}

// LoopPlan is one while loop's entry in a Plan: where the loop was
// when planning started, the dependence verdict, and what the planner
// did about it.
type LoopPlan struct {
	// Func and Index locate the loop in the *input* program (Index
	// counts while loops in lang.Walk order, the LoopReports/StripMine
	// convention — so the coordinates are valid against the caller's
	// own source even after sibling rewrites shifted the working
	// program's indices); Pos is its source position.
	Func  string
	Index int
	Pos   lang.Pos
	// Parallelized marks an approved, strip-mined loop; Helper is its
	// generated iteration procedure and Width its strip width.
	Parallelized bool
	Helper       string
	Width        int
	// Absorbed marks a loop nested in the body of an approved loop: it
	// moved into AbsorbedInto's body and runs serially inside the
	// parallel iterations — neither approved nor rejected on its own.
	Absorbed     bool
	AbsorbedInto string
	// Report is the dependence verdict (nil for absorbed loops that
	// moved before the scan reached them).
	Report *depend.Report
}

// String renders one plan line.
func (lp *LoopPlan) String() string {
	at := fmt.Sprintf("%s#%d (line %d)", lp.Func, lp.Index, lp.Pos.Line)
	switch {
	case lp.Parallelized:
		return fmt.Sprintf("PARALLELIZED %-28s -> %s, width %d", at, lp.Helper, lp.Width)
	case lp.Absorbed:
		return fmt.Sprintf("absorbed     %-28s runs serially inside %s", at, lp.AbsorbedInto)
	default:
		why := "loop not analyzable"
		if lp.Report != nil && len(lp.Report.Reasons) > 0 {
			why = lp.Report.Reasons[0]
		}
		return fmt.Sprintf("rejected     %-28s %s", at, why)
	}
}

// Plan is the planner's report: the transformed program plus one entry
// per while loop saying what happened to it and why.
type Plan struct {
	// Program is the fully transformed program (the input program when
	// nothing was approved; the input is never modified).
	Program *lang.Program
	// Width is the strip width applied to every approved loop.
	Width int
	// Loops lists every while loop of the planned functions in program
	// order.
	Loops []*LoopPlan
	// Parallelized counts the approved (strip-mined) loops.
	Parallelized int
}

// Summary is the one-line form: "parallelized 2/7 loops (width 16):
// timestep#0, timestep#1".
func (p *Plan) Summary() string {
	var done []string
	for _, lp := range p.Loops {
		if lp.Parallelized {
			done = append(done, fmt.Sprintf("%s#%d", lp.Func, lp.Index))
		}
	}
	if len(done) == 0 {
		return fmt.Sprintf("parallelized 0/%d loops (width %d)", len(p.Loops), p.Width)
	}
	return fmt.Sprintf("parallelized %d/%d loops (width %d): %s",
		p.Parallelized, len(p.Loops), p.Width, strings.Join(done, ", "))
}

// String renders the full per-loop report, rejection reasons included.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "auto-parallelization plan — %s\n", p.Summary())
	for _, lp := range p.Loops {
		fmt.Fprintf(&b, "  %s\n", lp)
	}
	return strings.TrimRight(b.String(), "\n")
}

// AutoParallelize plans and transforms a whole checked program: every
// while loop of every function is put through the dependence test, and
// every approved loop is strip-mined with the given width (width <= 0
// selects DefaultWidth for this host). The input program is not
// modified. The scan restarts after each rewrite, so multiple approved
// loops in one function (the paper's BHL1/BHL2 pair) and approved
// loops nested inside rejected ones are both handled; the resulting
// program is exactly what the equivalent sequence of hand-written
// StripMine calls would produce, in program order.
func AutoParallelize(prog *lang.Program, width int) (*Plan, error) {
	if width <= 0 {
		width = DefaultWidth(0)
	}
	plan := &Plan{Width: width}

	// The functions to plan: a snapshot of what exists before any
	// rewrite. Helpers synthesized below are appended after these and
	// never revisited. origIndex remembers every loop's (function,
	// index) in the *input* program — rewrites shift indices (nested
	// loops move into helpers), and plan entries must report the
	// coordinates the caller's own program uses.
	names := make([]string, 0, len(prog.Funcs))
	type loopAt struct {
		fn    string
		index int
	}
	origIndex := map[lang.Pos]loopAt{}
	for _, f := range prog.Funcs {
		names = append(names, f.Name)
		for i, loop := range whileLoops(f.Body) {
			origIndex[loop.Pos()] = loopAt{fn: f.Name, index: i}
		}
	}
	newLoopPlan := func(pos lang.Pos, fn string, index int) *LoopPlan {
		if at, ok := origIndex[pos]; ok {
			fn, index = at.fn, at.index
		}
		return &LoopPlan{Func: fn, Index: index, Pos: pos}
	}

	// seen keys loop identity by source position (stable across clones
	// and across the move into a helper). Programs built by lang.Parse
	// give every loop a distinct position; a hand-built AST with
	// all-zero positions would conflate its loops here.
	seen := map[lang.Pos]*LoopPlan{}
	cur := prog
	for {
		res, err := analysis.New(cur).AnalyzeAll()
		if err != nil {
			return nil, err
		}
		eff := effects.NewAnalyzer(cur)
		transformed := false
	scan:
		for _, name := range names {
			fn := cur.Func(name)
			loops := whileLoops(fn.Body)
			for i, loop := range loops {
				lp := seen[loop.Pos()]
				if lp != nil && (lp.Parallelized || lp.Absorbed) {
					continue
				}
				var rep *depend.Report
				if containsForall(loop.Body) {
					// Never nest parallel regions: a loop whose body
					// already holds a forall (an inner loop this planner
					// approved on an earlier pass, or surface-syntax
					// forall) stays serial — the pool is already busy
					// inside it.
					rep = &depend.Report{Func: name, Loop: loop,
						Reasons: []string{"body already contains a parallel forall (the planner does not nest parallelism)"}}
				} else if rep, err = depend.AnalyzeLoop(cur, res.Funcs[name], eff, name, i); err != nil {
					return nil, err
				}
				if lp == nil {
					lp = newLoopPlan(loop.Pos(), name, i)
					seen[loop.Pos()] = lp
					plan.Loops = append(plan.Loops, lp)
				}
				lp.Report = rep
				if !rep.Parallelizable {
					continue
				}
				sm, err := stripMine(cur, rep, name, i, width)
				if err != nil {
					return nil, err
				}
				lp.Parallelized = true
				lp.Helper = sm.Helper
				lp.Width = width
				plan.Parallelized++
				// Loops nested in the approved body move into the helper
				// and run serially inside the parallel iterations; record
				// them so the plan accounts for every loop of the input.
				for _, inner := range whileLoops(loop.Body) {
					ilp := seen[inner.Pos()]
					if ilp == nil {
						ilp = newLoopPlan(inner.Pos(), name, indexOfLoop(loops, inner))
						seen[inner.Pos()] = ilp
						plan.Loops = append(plan.Loops, ilp)
					}
					ilp.Absorbed = true
					ilp.AbsorbedInto = sm.Helper
				}
				cur = sm.Program
				transformed = true
				break scan
			}
		}
		if !transformed {
			break
		}
	}
	plan.Program = cur
	return plan, nil
}

// whileLoops enumerates the while loops under a block in lang.Walk
// order — the same order LoopReports and FindLoop count by.
func whileLoops(body *lang.Block) []*lang.WhileStmt {
	var loops []*lang.WhileStmt
	lang.Walk(body, func(s lang.Stmt) bool {
		if w, ok := s.(*lang.WhileStmt); ok {
			loops = append(loops, w)
		}
		return true
	})
	return loops
}

func indexOfLoop(loops []*lang.WhileStmt, w *lang.WhileStmt) int {
	for i, l := range loops {
		if l == w {
			return i
		}
	}
	return -1
}

// containsForall reports whether any statement under body is a
// parallel for (a forall region).
func containsForall(body *lang.Block) bool {
	found := false
	lang.Walk(body, func(s lang.Stmt) bool {
		if f, ok := s.(*lang.ForStmt); ok && f.Parallel {
			found = true
		}
		return !found
	})
	return found
}
