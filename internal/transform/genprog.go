package transform

import (
	"fmt"
	"strings"

	"repro/internal/adds"
)

// ManyLoopProgramPSL generates the R7 planner-cost workload: a PSL
// program with funcs procedures of loopsPerFunc approvable
// pointer-chasing loops each (funcs·loopsPerFunc approved rewrites in
// total), plus a main that calls every worker — the caller each
// rewrite's summary cascade gets a chance to reach, which is exactly
// what an incremental planner must NOT re-analyze when the summaries
// it consumes are unchanged. BenchmarkAutoParallelizePlanCost,
// TestPlanCostSubquadratic, BENCH_plan.json, and `cmd/experiments
// -plancost` all measure planning over this program.
func ManyLoopProgramPSL(funcs, loopsPerFunc int) string {
	var b strings.Builder
	b.WriteString(adds.OneWayListSrc)
	b.WriteString("\n")
	for i := 0; i < funcs; i++ {
		fmt.Fprintf(&b, "procedure work%d(OneWayList *head) {\n", i)
		fmt.Fprintf(&b, "  var OneWayList *p = head;\n")
		for j := 0; j < loopsPerFunc; j++ {
			fmt.Fprintf(&b, "  p = head;\n")
			fmt.Fprintf(&b, "  while p != NULL {\n")
			fmt.Fprintf(&b, "    p->data = p->data + %d;\n", j+1)
			fmt.Fprintf(&b, "    p = p->next;\n")
			fmt.Fprintf(&b, "  }\n")
		}
		b.WriteString("}\n")
	}
	b.WriteString("procedure main(OneWayList *head) {\n")
	for i := 0; i < funcs; i++ {
		fmt.Fprintf(&b, "  work%d(head);\n", i)
	}
	b.WriteString("}\n")
	return b.String()
}
