package transform

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/adds"
	"repro/internal/depend"
	"repro/internal/lang"
)

// TestAutoParallelizeDuplicateLoopPos: the planner keys loops by source
// position, so a program whose loops share one position (the classic
// hand-built-AST mistake: every node at the zero position) must be
// rejected up front with the typed error — not silently misplanned.
func TestAutoParallelizeDuplicateLoopPos(t *testing.T) {
	prog, err := lang.Parse(adds.OneWayListSrc + `
procedure work(OneWayList *head) {
  var OneWayList *p = head;
  while p != NULL {
    p->data = p->data + 1;
    p = p->next;
  }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// Clone a function and install it under a new name: the clone's loop
	// keeps the original's position, exactly the duplicate the planner
	// must refuse.
	twin := prog.Clone().Func("work")
	twin.Name = "work2"
	if err := prog.AddFunc(twin); err != nil {
		t.Fatal(err)
	}

	_, err = AutoParallelize(prog, 4)
	if err == nil {
		t.Fatal("AutoParallelize accepted a program with duplicate loop positions")
	}
	var dup *DuplicateLoopPosError
	if !errors.As(err, &dup) {
		t.Fatalf("got %T (%v), want *DuplicateLoopPosError", err, err)
	}
	if dup.FuncA == dup.FuncB {
		t.Errorf("error names one function twice (%s); the duplicate spans work and work2", dup.FuncA)
	}
	for _, fn := range []string{dup.FuncA, dup.FuncB} {
		if fn != "work" && fn != "work2" {
			t.Errorf("error names unexpected function %q", fn)
		}
	}
}

// TestReasonTextJoinsAllReasons: a dependence report may carry several
// reasons (the approval case records three facts); the plan line must
// render every one, not just Reasons[0].
func TestReasonTextJoinsAllReasons(t *testing.T) {
	lp := &LoopPlan{
		Func:  "f",
		Index: 0,
		Report: &depend.Report{
			Parallelizable: false,
			Reasons: []string{
				"induction variable q does not strictly advance",
				"cross-iteration write/write conflict on field data",
			},
		},
	}
	text := lp.ReasonText()
	for _, want := range lp.Report.Reasons {
		if !strings.Contains(text, want) {
			t.Errorf("ReasonText dropped %q: %q", want, text)
		}
	}
	if want := lp.Report.Reasons[0] + "; " + lp.Report.Reasons[1]; text != want {
		t.Errorf("ReasonText = %q, want %q", text, want)
	}
	if line := lp.String(); !strings.Contains(line, lp.Report.Reasons[1]) {
		t.Errorf("String() dropped the second reason: %q", line)
	}

	empty := &LoopPlan{Func: "f", Report: &depend.Report{}}
	if got := empty.ReasonText(); got != "loop not analyzable" {
		t.Errorf("empty report ReasonText = %q, want fixed placeholder", got)
	}
}

// TestPlanIndicesNonNegative: every plan entry — including absorbed
// inner loops, which are located in a body the rewrite is about to
// replace — must carry a valid non-negative input-program index. The
// old planner silently recorded Index: -1 when indexOfLoop missed.
func TestPlanIndicesNonNegative(t *testing.T) {
	plan := planFor(t, adds.OneWayListSrc+`
procedure crunch(OneWayList *head) {
  var OneWayList *p = head;
  while p != NULL {
    var int acc = 0;
    var int k = 0;
    while k < 3 {
      acc = acc + p->data;
      k = k + 1;
    }
    p->data = acc;
    p = p->next;
  }
}
`, 4)
	absorbed := 0
	for _, lp := range plan.Loops {
		if lp.Index < 0 {
			t.Errorf("%s: negative plan index %d", lp.Func, lp.Index)
		}
		if lp.Absorbed {
			absorbed++
		}
	}
	if absorbed == 0 {
		t.Fatal("test program exercised no absorbed-loop path")
	}
}
