// Package transform implements the parallelizing transformations the
// paper applies once the analysis has proven a loop's iterations
// independent:
//
//   - StripMine (§4.3.3): rewrite "while p != NULL { body; p = p->f }"
//     into an outer while whose body runs `width` iterations in
//     parallel — a cloned iteration procedure first advances its
//     private copy of p by i speculative steps (the paper's FOR2), then
//     the outer loop advances p by width steps (FOR1). Speculative
//     traversability (§3.2) makes the unguarded advances safe. The
//     strip width is a free parameter, not the PE count: the paper sets
//     width = PEs (one iteration per PE per trip), while experiment X2
//     and the parexec scheduling policies use width > PEs so that the
//     iteration→PE mapping is the scheduler's choice.
//
//   - Unroll ([HG92]): replicate the body, relying on the same
//     speculative traversability to avoid per-copy NULL checks on the
//     advances.
//
//   - AutoParallelize (autopar.go): the planner that closes the
//     paper's loop — run the dependence test on every while loop of a
//     whole program and strip-mine each approved one, no hand-picked
//     function names or loop indices.
//
// All of them refuse to run unless package depend approves the loop.
package transform

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/depend"
	"repro/internal/effects"
	"repro/internal/lang"
)

// StripMineResult carries the transformed program and the dependence
// report that licensed it.
type StripMineResult struct {
	Program *lang.Program
	Report  *depend.Report
	// Helper is the generated per-iteration procedure name.
	Helper string
	// Width is the strip width: forall iterations per outer-loop trip.
	Width int
}

// StripMine parallelizes the loopIndex-th while loop of fnName with
// the given strip width — the number of iterations each trip of the
// outer loop runs as one parallel forall (§4.3.3 uses width = PEs; a
// larger width hands the executor's scheduling policy more iterations
// per barrier). It returns a transformed copy of the program (the
// input is not modified) and fails if the dependence test rejects the
// loop.
func StripMine(prog *lang.Program, fnName string, loopIndex, width int) (*StripMineResult, error) {
	rep, err := approveLoop(prog, fnName, loopIndex)
	if err != nil {
		return nil, err
	}
	if !rep.Parallelizable {
		return nil, fmt.Errorf("transform: loop #%d of %s is not parallelizable:\n%s", loopIndex, fnName, rep)
	}
	return stripMineCloned(prog, rep, fnName, loopIndex, width)
}

// approveLoop runs the full front half of every transformation in this
// package — path-matrix analysis, effect summaries, the dependence
// test — on one loop. The planner (AutoParallelize) reuses the verdict
// it computed during its scan instead of calling this again per loop.
func approveLoop(prog *lang.Program, fnName string, loopIndex int) (*depend.Report, error) {
	fr, err := analysis.Analyze(prog, fnName)
	if err != nil {
		return nil, err
	}
	eff := effects.NewAnalyzer(prog)
	return depend.AnalyzeLoop(prog, fr, eff, fnName, loopIndex)
}

// stripMineCloned is the rewrite half of StripMine: it trusts rep (the
// dependence report licensing loop loopIndex of fnName on this exact
// program) and performs the §4.3.3 transformation on a clone.
func stripMineCloned(prog *lang.Program, rep *depend.Report, fnName string, loopIndex, width int) (*StripMineResult, error) {
	clone := prog.Clone()
	helperName, err := stripMineInPlace(clone, rep, fnName, loopIndex, width)
	if err != nil {
		return nil, err
	}
	return &StripMineResult{Program: clone, Report: rep, Helper: helperName, Width: width}, nil
}

// stripMineInPlace performs the §4.3.3 rewrite directly on prog,
// returning the generated helper's name. Exactly two functions are
// touched: fnName (its loop body is replaced) and the appended helper;
// only those two are re-checked, so every other function keeps its
// statement and expression identities — the property the incremental
// planner's memoized analysis relies on. On error the program may be
// left partially rewritten; callers that need the input preserved clone
// first (stripMineCloned).
func stripMineInPlace(prog *lang.Program, rep *depend.Report, fnName string, loopIndex, width int) (string, error) {
	if width < 1 {
		return "", fmt.Errorf("transform: strip width must be >= 1, got %d", width)
	}

	fn := prog.Func(fnName)
	if fn == nil {
		return "", fmt.Errorf("transform: no function %q", fnName)
	}
	loop, err := analysis.FindLoop(fn, loopIndex)
	if err != nil {
		return "", err
	}
	ind := rep.Induction
	field := rep.AdvanceField

	indType := inductionType(loop, ind)
	if indType == nil {
		return "", fmt.Errorf("transform: cannot determine type of induction %q", ind)
	}

	// Free variables of the body (excluding the induction and locals):
	// they become parameters of the iteration procedure.
	frees := freeVars(loop.Body, ind)

	helperName := fmt.Sprintf("_%s_L%d_iteration", fnName, loopIndex)
	helper, err := buildHelper(helperName, ind, indType, field, loop, frees)
	if err != nil {
		return "", err
	}
	if err := prog.AddFunc(helper); err != nil {
		return "", err
	}

	// Replace the loop body:
	//   forall i = 0 to width-1 { helper(i, p, frees...); }  // parallel
	//   for i = 0 to width-1 { p = p->f; }                   // FOR1
	args := []lang.Expr{&lang.Ident{Name: "_pe"}, &lang.Ident{Name: ind}}
	for _, fv := range frees {
		args = append(args, &lang.Ident{Name: fv.Name})
	}
	parallel := &lang.ForStmt{
		Var:      "_pe",
		From:     lang.NewIntLit(0, loop.Pos()),
		To:       lang.NewIntLit(int64(width-1), loop.Pos()),
		Parallel: true,
		Body: &lang.Block{Stmts: []lang.Stmt{
			&lang.CallStmt{Call: &lang.CallExpr{Func: helperName, Args: args}},
		}},
	}
	// Attribute the generated forall to the loop it strip-mines, so
	// profilers and error messages key to the source loop's line — the
	// same line the planner's Plan reports.
	parallel.SetPos(loop.Pos())
	advance := &lang.ForStmt{
		Var:  "_pe",
		From: lang.NewIntLit(0, loop.Pos()),
		To:   lang.NewIntLit(int64(width-1), loop.Pos()),
		Body: &lang.Block{Stmts: []lang.Stmt{
			&lang.AssignStmt{
				LHS: &lang.Ident{Name: ind},
				RHS: &lang.FieldExpr{X: &lang.Ident{Name: ind}, Field: field},
			},
		}},
	}
	loop.Body = &lang.Block{Stmts: []lang.Stmt{parallel, advance}}

	// Re-check only the touched functions, to type the synthesized nodes.
	if err := lang.CheckFuncs(prog, fn, helper); err != nil {
		return "", fmt.Errorf("transform: internal: generated code does not check: %w", err)
	}
	return helperName, nil
}

// buildHelper constructs:
//
//	procedure <name>(int _pe, T *p, <frees>) {
//	  for _k = 1 to _pe { p = p->f; }   // FOR2: speculative skip-ahead
//	  if p != NULL { <body without advance> }
//	}
func buildHelper(name, ind string, indType lang.Type, field string, loop *lang.WhileStmt, frees []lang.Param) (*lang.FuncDecl, error) {
	params := []lang.Param{{Name: "_pe", Type: lang.Int}, {Name: ind, Type: indType}}
	params = append(params, frees...)

	skip := &lang.ForStmt{
		Var:  "_k",
		From: lang.NewIntLit(1, loop.Pos()),
		To:   &lang.Ident{Name: "_pe"},
		Body: &lang.Block{Stmts: []lang.Stmt{
			&lang.AssignStmt{
				LHS: &lang.Ident{Name: ind},
				RHS: &lang.FieldExpr{X: &lang.Ident{Name: ind}, Field: field},
			},
		}},
	}

	// Clone the body and drop the trailing advance.
	body := lang.CloneBlock(loop.Body)
	if len(body.Stmts) == 0 {
		return nil, fmt.Errorf("transform: empty loop body")
	}
	body.Stmts = body.Stmts[:len(body.Stmts)-1]

	guard := &lang.IfStmt{
		Cond: &lang.BinExpr{
			Op: lang.NEQ,
			X:  &lang.Ident{Name: ind},
			Y:  &lang.NullLit{},
		},
		Then: body,
	}
	return &lang.FuncDecl{
		Name:   name,
		Params: params,
		Body:   &lang.Block{Stmts: []lang.Stmt{skip, guard}},
	}, nil
}

// inductionType finds the pointer type of the induction variable from
// its uses in the loop.
func inductionType(loop *lang.WhileStmt, ind string) lang.Type {
	var t lang.Type
	if be, ok := loop.Cond.(*lang.BinExpr); ok {
		for _, e := range []lang.Expr{be.X, be.Y} {
			if id, ok := e.(*lang.Ident); ok && id.Name == ind && id.Type() != nil {
				t = id.Type()
			}
		}
	}
	if t != nil {
		return t
	}
	lang.Walk(loop.Body, func(s lang.Stmt) bool {
		lang.WalkExprs(s, func(e lang.Expr) {
			if id, ok := e.(*lang.Ident); ok && id.Name == ind && id.Type() != nil {
				t = id.Type()
			}
		})
		return t == nil
	})
	return t
}

// freeVars lists the variables the body reads that are declared outside
// it (excluding the induction variable), in deterministic order.
func freeVars(body *lang.Block, ind string) []lang.Param {
	declared := map[string]bool{ind: true}
	lang.Walk(body, func(s lang.Stmt) bool {
		switch s := s.(type) {
		case *lang.VarStmt:
			declared[s.Name] = true
		case *lang.ForStmt:
			declared[s.Var] = true
		}
		return true
	})
	seen := map[string]lang.Type{}
	lang.Walk(body, func(s lang.Stmt) bool {
		lang.WalkExprs(s, func(e lang.Expr) {
			id, ok := e.(*lang.Ident)
			if !ok || declared[id.Name] || id.Type() == nil {
				return
			}
			seen[id.Name] = id.Type()
		})
		return true
	})
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]lang.Param, len(names))
	for i, n := range names {
		out[i] = lang.Param{Name: n, Type: seen[n]}
	}
	return out
}

// Unroll replicates the body of the loop `factor` times ([HG92]). Each
// copy is guarded by a NULL check on the induction variable, but the
// advances themselves run unguarded thanks to speculative
// traversability. The loop must pass the same dependence test as
// StripMine (unrolling reorders no writes, but the test guarantees the
// copies do not interfere, which also keeps the transformation safe
// under later scheduling).
func Unroll(prog *lang.Program, fnName string, loopIndex, factor int) (*lang.Program, error) {
	if factor < 2 {
		return nil, fmt.Errorf("transform: unroll factor must be >= 2, got %d", factor)
	}
	rep, err := approveLoop(prog, fnName, loopIndex)
	if err != nil {
		return nil, err
	}
	if !rep.Parallelizable {
		return nil, fmt.Errorf("transform: loop #%d of %s is not unrollable:\n%s", loopIndex, fnName, rep)
	}

	clone := prog.Clone()
	fn := clone.Func(fnName)
	loop, err := analysis.FindLoop(fn, loopIndex)
	if err != nil {
		return nil, err
	}
	ind := rep.Induction
	field := rep.AdvanceField

	orig := lang.CloneBlock(loop.Body)
	orig.Stmts = orig.Stmts[:len(orig.Stmts)-1] // drop advance

	mkAdvance := func() lang.Stmt {
		return &lang.AssignStmt{
			LHS: &lang.Ident{Name: ind},
			RHS: &lang.FieldExpr{X: &lang.Ident{Name: ind}, Field: field},
		}
	}
	var stmts []lang.Stmt
	// First copy runs unguarded (the loop condition holds).
	stmts = append(stmts, lang.CloneBlock(orig), mkAdvance())
	for k := 1; k < factor; k++ {
		stmts = append(stmts, &lang.IfStmt{
			Cond: &lang.BinExpr{Op: lang.NEQ, X: &lang.Ident{Name: ind}, Y: &lang.NullLit{}},
			Then: lang.CloneBlock(orig),
		}, mkAdvance()) // speculative: advances past NULL are safe
	}
	loop.Body = &lang.Block{Stmts: stmts}

	if err := lang.Check(clone); err != nil {
		return nil, fmt.Errorf("transform: internal: unrolled code does not check: %w", err)
	}
	return clone, nil
}
