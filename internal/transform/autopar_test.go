package transform

import (
	"strings"
	"testing"

	"repro/internal/adds"
	"repro/internal/interp"
	"repro/internal/lang"
)

// planFor is a test helper: plan with the given width and fail on error.
func planFor(t *testing.T, src string, width int) *Plan {
	t.Helper()
	plan, err := AutoParallelize(lang.MustParse(src), width)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// loopByFunc finds the plan entry for (fn, index).
func loopByFunc(t *testing.T, p *Plan, fn string, index int) *LoopPlan {
	t.Helper()
	for _, lp := range p.Loops {
		if lp.Func == fn && lp.Index == index {
			return lp
		}
	}
	t.Fatalf("plan has no entry for %s#%d:\n%s", fn, index, p)
	return nil
}

// TestAutoParallelizeMatchesStripMine: on the single-approved-loop
// program the planner must emit exactly the program the hand-wired
// StripMine call produces — same helper name, same text.
func TestAutoParallelizeMatchesStripMine(t *testing.T) {
	prog := lang.MustParse(scaleSrc)
	hand, err := StripMine(prog, "scale", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan := planFor(t, scaleSrc, 4)
	if got, want := lang.Format(plan.Program), lang.Format(hand.Program); got != want {
		t.Errorf("auto plan diverged from hand-tuned StripMine:\n--- auto ---\n%s\n--- hand ---\n%s", got, want)
	}
	if plan.Parallelized != 1 {
		t.Errorf("parallelized %d loops, want 1:\n%s", plan.Parallelized, plan)
	}
	lp := loopByFunc(t, plan, "scale", 0)
	if !lp.Parallelized || lp.Helper != "_scale_L0_iteration" || lp.Width != 4 {
		t.Errorf("scale#0 entry: %+v", lp)
	}
	// The rejected loops carry their dependence reports.
	for _, fn := range []string{"build", "total"} {
		lp := loopByFunc(t, plan, fn, 0)
		if lp.Parallelized || lp.Absorbed {
			t.Errorf("%s#0 should be rejected: %s", fn, lp)
		}
		if lp.Report == nil || len(lp.Report.Reasons) == 0 {
			t.Errorf("%s#0 rejection lacks a reason", fn)
		}
	}
	// The input program is untouched.
	if prog.Func("_scale_L0_iteration") != nil {
		t.Error("AutoParallelize modified its input program")
	}
}

// TestAutoParallelizeSiblings: two approved loops in one function (the
// BHL1/BHL2 shape) are both strip-mined, and the result equals the
// hand-written chain of StripMine calls in program order.
func TestAutoParallelizeSiblings(t *testing.T) {
	src := adds.OneWayListSrc + `
function OneWayList * build(int n) {
  var OneWayList *head = NULL;
  var int i = n;
  while i > 0 {
    var OneWayList *node = new OneWayList;
    node->data = i;
    node->next = head;
    head = node;
    i = i - 1;
  }
  return head;
}

procedure twopass(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    p->data = p->data * c;
    p = p->next;
  }
  p = head;
  while p != NULL {
    p->data = p->data + 1;
    p = p->next;
  }
}

function int main(int n, int c) {
  var OneWayList *h = build(n);
  twopass(h, c);
  var int s = 0;
  var OneWayList *p = h;
  while p != NULL {
    s = s + p->data;
    p = p->next;
  }
  return s;
}
`
	prog := lang.MustParse(src)
	h1, err := StripMine(prog, "twopass", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := StripMine(h1.Program, "twopass", 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan := planFor(t, src, 8)
	if got, want := lang.Format(plan.Program), lang.Format(h2.Program); got != want {
		t.Errorf("auto plan diverged from the hand-tuned chain:\n--- auto ---\n%s\n--- hand ---\n%s", got, want)
	}
	if plan.Parallelized != 2 {
		t.Errorf("parallelized %d loops, want 2:\n%s", plan.Parallelized, plan)
	}
	// Semantics: the planned program reproduces the serial result.
	args := []interp.Value{interp.IntVal(37), interp.IntVal(3)}
	want, _, err := interp.Run(prog, interp.Config{Seed: 1}, "main", args...)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := interp.Run(plan.Program, interp.Config{Seed: 1}, "main", args...)
	if err != nil {
		t.Fatal(err)
	}
	if got.I != want.I {
		t.Errorf("planned program returned %d, serial %d", got.I, want.I)
	}
}

// TestAutoParallelizeAbsorbsNestedLoops: a while loop nested in an
// approved body moves into the helper and is reported as absorbed,
// not rejected.
func TestAutoParallelizeAbsorbsNestedLoops(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure crunch(OneWayList *head) {
  var OneWayList *p = head;
  while p != NULL {
    var int acc = 0;
    var int k = 0;
    while k < 100 {
      acc = acc + k;
      k = k + 1;
    }
    p->data = acc;
    p = p->next;
  }
}
`
	plan := planFor(t, src, 4)
	outer := loopByFunc(t, plan, "crunch", 0)
	if !outer.Parallelized {
		t.Fatalf("outer loop not parallelized:\n%s", plan)
	}
	inner := loopByFunc(t, plan, "crunch", 1)
	if !inner.Absorbed || inner.AbsorbedInto != outer.Helper {
		t.Errorf("inner loop entry: %+v (want absorbed into %s)", inner, outer.Helper)
	}
	if inner.Parallelized {
		t.Errorf("inner loop must not be independently parallelized")
	}
}

// TestAutoParallelizeNestedApprovedInRejected: an approved pointer-
// chasing loop inside a rejected counting loop is strip-mined in
// place — index bookkeeping survives the rewrite.
func TestAutoParallelizeNestedApprovedInRejected(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure rounds(OneWayList *head, int c, int n) {
  var int r = 0;
  while r < n {
    var OneWayList *p = head;
    while p != NULL {
      p->data = p->data * c;
      p = p->next;
    }
    r = r + 1;
  }
}
`
	plan := planFor(t, src, 4)
	outer := loopByFunc(t, plan, "rounds", 0)
	if outer.Parallelized || outer.Absorbed {
		t.Errorf("counting loop should stay serial: %s", outer)
	}
	inner := loopByFunc(t, plan, "rounds", 1)
	if !inner.Parallelized {
		t.Fatalf("nested approved loop not parallelized:\n%s", plan)
	}
	text := lang.FormatFunc(plan.Program.Func("rounds"))
	if !strings.Contains(text, "forall") {
		t.Errorf("transformed rounds lacks forall:\n%s", text)
	}
}

// TestAutoParallelizeOriginalIndices: plan entries report the indices
// loops have in the *input* program, even for loops first reached
// after an earlier rewrite shifted the working program's indices (the
// nested W1 moves into a helper, so the sibling W2 is loop #1 of the
// rewritten function — but loop #2 of the caller's source, and that
// is what the plan must say).
func TestAutoParallelizeOriginalIndices(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure work(OneWayList *head) {
  var OneWayList *p = head;
  while p != NULL {
    var int acc = 0;
    var int k = 0;
    while k < 10 {
      acc = acc + k;
      k = k + 1;
    }
    p->data = acc;
    p = p->next;
  }
  var int s = 0;
  p = head;
  while p != NULL {
    s = s + p->data;
    p = p->next;
  }
}
`
	plan := planFor(t, src, 4)
	if lp := loopByFunc(t, plan, "work", 0); !lp.Parallelized {
		t.Errorf("work#0: %s", lp)
	}
	if lp := loopByFunc(t, plan, "work", 1); !lp.Absorbed {
		t.Errorf("work#1: %s", lp)
	}
	lp := loopByFunc(t, plan, "work", 2) // fails if the plan mislabels W2 as #1
	if lp.Parallelized || lp.Absorbed || lp.Report == nil ||
		!strings.Contains(strings.Join(lp.Report.Reasons, " "), "loop-carried") {
		t.Errorf("work#2: %+v", lp)
	}
}

// TestAutoParallelizeRefusesNestedForall: a loop whose body already
// contains a forall (surface syntax here; a planner-transformed inner
// loop in general) is left serial with an explicit reason.
func TestAutoParallelizeRefusesNestedForall(t *testing.T) {
	src := adds.OneWayListSrc + `
procedure mixed(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    forall i = 0 to 3 {
      p->data = p->data + 0;
    }
    p->data = p->data * c;
    p = p->next;
  }
}
`
	plan := planFor(t, src, 4)
	if plan.Parallelized != 0 {
		t.Fatalf("nothing should be parallelized:\n%s", plan)
	}
	lp := loopByFunc(t, plan, "mixed", 0)
	if lp.Report == nil || !strings.Contains(strings.Join(lp.Report.Reasons, " "), "forall") {
		t.Errorf("missing nested-forall reason: %+v", lp)
	}
}

// TestAutoParallelizeDefaults: width <= 0 selects the host default,
// and the plan renders a readable summary.
func TestAutoParallelizeDefaults(t *testing.T) {
	plan := planFor(t, scaleSrc, 0)
	if plan.Width != DefaultWidth(0) {
		t.Errorf("width %d, want DefaultWidth(0) = %d", plan.Width, DefaultWidth(0))
	}
	if DefaultWidth(4) != 16 {
		t.Errorf("DefaultWidth(4) = %d, want 16", DefaultWidth(4))
	}
	s := plan.Summary()
	if !strings.Contains(s, "scale#0") || !strings.Contains(s, "parallelized 1/") {
		t.Errorf("summary %q", s)
	}
	if !strings.Contains(plan.String(), "PARALLELIZED") {
		t.Errorf("plan string lacks verdicts:\n%s", plan)
	}
}
