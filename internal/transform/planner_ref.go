package transform

import (
	"repro/internal/analysis"
	"repro/internal/depend"
	"repro/internal/effects"
	"repro/internal/lang"
)

// autoParallelizeFullRestart is the pre-incremental planner, kept as
// the reference implementation for differential testing: after every
// rewrite it re-analyzes the whole program from scratch and restarts
// its scan at the first function — quadratic in approved loops, but
// trivially correct. AutoParallelize must produce a byte-identical Plan
// (plan text and transformed program) on every input this reference
// accepts; TestIncrementalMatchesFullRestart enforces that over the
// corpus.
func autoParallelizeFullRestart(prog *lang.Program, width int) (*Plan, error) {
	if width <= 0 {
		width = DefaultWidth(0)
	}
	plan := &Plan{Width: width}

	names := make([]string, 0, len(prog.Funcs))
	type loopAt struct {
		fn    string
		index int
	}
	origIndex := map[lang.Pos]loopAt{}
	for _, f := range prog.Funcs {
		names = append(names, f.Name)
		for i, loop := range whileLoops(f.Body) {
			origIndex[loop.Pos()] = loopAt{fn: f.Name, index: i}
		}
	}
	newLoopPlan := func(pos lang.Pos, fn string, index int) *LoopPlan {
		if at, ok := origIndex[pos]; ok {
			fn, index = at.fn, at.index
		}
		return &LoopPlan{Func: fn, Index: index, Pos: pos}
	}

	seen := map[lang.Pos]*LoopPlan{}
	cur := prog
	for {
		res, err := analysis.New(cur).AnalyzeAll()
		if err != nil {
			return nil, err
		}
		eff := effects.NewAnalyzer(cur)
		transformed := false
	scan:
		for _, name := range names {
			fn := cur.Func(name)
			loops := whileLoops(fn.Body)
			for i, loop := range loops {
				lp := seen[loop.Pos()]
				if lp != nil && (lp.Parallelized || lp.Absorbed) {
					continue
				}
				var rep *depend.Report
				if containsForall(loop.Body) {
					rep = &depend.Report{Func: name, Loop: loop,
						Reasons: []string{"body already contains a parallel forall (the planner does not nest parallelism)"}}
				} else if rep, err = depend.AnalyzeLoop(cur, res.Funcs[name], eff, name, i); err != nil {
					return nil, err
				}
				if lp == nil {
					lp = newLoopPlan(loop.Pos(), name, i)
					seen[loop.Pos()] = lp
					plan.Loops = append(plan.Loops, lp)
				}
				lp.Report = rep
				if !rep.Parallelizable {
					continue
				}
				sm, err := stripMineCloned(cur, rep, name, i, width)
				if err != nil {
					return nil, err
				}
				lp.Parallelized = true
				lp.Helper = sm.Helper
				lp.Width = width
				plan.Parallelized++
				for _, inner := range whileLoops(loop.Body) {
					ilp := seen[inner.Pos()]
					if ilp == nil {
						ilp = newLoopPlan(inner.Pos(), name, indexOfLoop(loops, inner))
						seen[inner.Pos()] = ilp
						plan.Loops = append(plan.Loops, ilp)
					}
					ilp.Absorbed = true
					ilp.AbsorbedInto = sm.Helper
				}
				cur = sm.Program
				transformed = true
				break scan
			}
		}
		if !transformed {
			break
		}
	}
	plan.Program = cur
	annotateVectorVerdicts(plan)
	return plan, nil
}
