// Planner-cost benchmarks and the committed BENCH_plan.json
// trajectory: wall cost of planning a generated many-loop program under
// the incremental planner (AutoParallelize) vs the full-restart
// reference (autoParallelizeFullRestart), plus the scaling row that
// shows cost grows near-linearly in approved loops. Regenerate with:
//
//	go test ./internal/transform -run TestBenchPlanJSON -write-bench-plan
//
// The non-writing run only validates shape; absolute numbers are
// machine-dependent and never asserted. TestPlanCostSubquadratic is the
// regression gate: it re-measures both planners and fails if the
// incremental one loses its asymptotic edge.
package transform

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/lang"
)

var writeBenchPlan = flag.Bool("write-bench-plan", false, "re-measure and rewrite BENCH_plan.json")

const benchPlanJSONPath = "../../BENCH_plan.json"

// genManyLoopSrc is the R7 workload generator (genprog.go), aliased
// for the test file's call sites.
func genManyLoopSrc(n, m int) string { return ManyLoopProgramPSL(n, m) }

// planProgram parses src and fails the test on error.
func planProgram(t testing.TB, src string) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// BenchmarkAutoParallelizePlanCost measures the incremental planner on
// the 200-loop program (20 functions × 10 loops).
func BenchmarkAutoParallelizePlanCost(b *testing.B) {
	prog := planProgram(b, genManyLoopSrc(20, 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := AutoParallelize(prog, 4)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Parallelized != 200 {
			b.Fatalf("parallelized %d loops, want 200", plan.Parallelized)
		}
	}
}

// BenchmarkAutoParallelizePlanCostFullRestart measures the reference
// planner on the same program — the seed row of BENCH_plan.json.
func BenchmarkAutoParallelizePlanCostFullRestart(b *testing.B) {
	prog := planProgram(b, genManyLoopSrc(20, 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := autoParallelizeFullRestart(prog, 4)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Parallelized != 200 {
			b.Fatalf("parallelized %d loops, want 200", plan.Parallelized)
		}
	}
}

// timePlan returns the best-of-k wall time of one planner run.
func timePlan(t *testing.T, src string, k int, plan func(*lang.Program) error) time.Duration {
	t.Helper()
	prog := planProgram(t, src)
	best := time.Duration(1<<62 - 1)
	for i := 0; i < k; i++ {
		start := time.Now()
		if err := plan(prog); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func runIncremental(p *lang.Program) error {
	_, err := AutoParallelize(p, 4)
	return err
}

func runFullRestart(p *lang.Program) error {
	_, err := autoParallelizeFullRestart(p, 4)
	return err
}

// TestPlanCostSubquadratic is the regression gate for the incremental
// planner's asymptotics, on two axes:
//
//  1. Head-to-head: on the 200-loop program the incremental planner
//     must beat the full-restart reference by a wide margin (the real
//     gap is an order of magnitude; the gate asserts 3× so scheduler
//     noise cannot flake it).
//  2. Scaling: quadrupling the approved-loop count (5×5 → 20×5) must
//     not quadruple-squared the cost. Linear scaling gives ~4×,
//     quadratic ~16×; the gate draws the line at 10×.
func TestPlanCostSubquadratic(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; skipped in -short")
	}
	src200 := genManyLoopSrc(20, 10)
	inc := timePlan(t, src200, 3, runIncremental)
	full := timePlan(t, src200, 1, runFullRestart)
	t.Logf("200 loops: incremental %v, full-restart %v (%.1fx)", inc, full, float64(full)/float64(inc))
	if float64(full) < 3*float64(inc) {
		t.Errorf("incremental planner only %.2fx faster than full restart (want >= 3x): inc=%v full=%v",
			float64(full)/float64(inc), inc, full)
	}

	small := timePlan(t, genManyLoopSrc(5, 5), 3, runIncremental)
	large := timePlan(t, genManyLoopSrc(20, 5), 3, runIncremental)
	ratio := float64(large) / float64(small)
	t.Logf("scaling 25 -> 100 loops: %v -> %v (%.1fx)", small, large, ratio)
	if ratio > 10 {
		t.Errorf("4x the approved loops cost %.1fx the time (want near-linear, <= 10x): small=%v large=%v",
			ratio, small, large)
	}
}

// planBenchEntry is one measured row of BENCH_plan.json.
type planBenchEntry struct {
	Name    string  `json:"name"`
	Loops   int     `json:"loops"`
	NsPerOp float64 `json:"ns_per_op"`
	N       int     `json:"n"`
}

// planBenchFile is the BENCH_plan.json schema. GoMaxProcs and
// GoVersion ride along with cpus so trajectory rows measured on
// different boxes (or GOMAXPROCS caps, or toolchains) are comparable.
type planBenchFile struct {
	GeneratedBy string           `json:"generated_by"`
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	CPUs        int              `json:"cpus"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	GoVersion   string           `json:"go_version"`
	Entries     []planBenchEntry `json:"benchmarks"`
	// SpeedupIncremental is full-restart/incremental ns on the 200-loop
	// program — the gap TestPlanCostSubquadratic guards.
	SpeedupIncremental float64 `json:"speedup_incremental"`
	// Scaling4xLoops is incremental T(100 loops)/T(25 loops): ~4 for
	// linear cost in approved loops, ~16 for quadratic.
	Scaling4xLoops float64 `json:"scaling_4x_loops"`
}

// TestBenchPlanJSON validates (and with -write-bench-plan, regenerates)
// the committed planner-cost trajectory.
func TestBenchPlanJSON(t *testing.T) {
	if *writeBenchPlan {
		writePlanBenchJSON(t)
	}
	data, err := os.ReadFile(benchPlanJSONPath)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test ./internal/transform -run TestBenchPlanJSON -write-bench-plan`)", err)
	}
	var f planBenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("BENCH_plan.json does not parse: %v", err)
	}
	want := map[string]bool{
		"plan-200-loops/full-restart": false,
		"plan-200-loops/incremental":  false,
		"plan-25-loops/incremental":   false,
		"plan-100-loops/incremental":  false,
	}
	for _, e := range f.Entries {
		if e.NsPerOp <= 0 {
			t.Errorf("%s: non-positive ns/op %v", e.Name, e.NsPerOp)
		}
		if _, ok := want[e.Name]; ok {
			want[e.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("BENCH_plan.json missing row %s (regenerate with -write-bench-plan)", name)
		}
	}
	if f.SpeedupIncremental < 5 {
		t.Errorf("recorded incremental speedup %.2fx below the 5x acceptance floor", f.SpeedupIncremental)
	}
	if f.Scaling4xLoops <= 0 || f.Scaling4xLoops > 10 {
		t.Errorf("recorded 4x-loops scaling %.2fx outside the near-linear band (0, 10]", f.Scaling4xLoops)
	}
	if f.GoMaxProcs <= 0 {
		t.Errorf("recorded gomaxprocs %d should be positive (regenerate with -write-bench-plan)", f.GoMaxProcs)
	}
	if f.GoVersion == "" {
		t.Error("recorded go_version is empty (regenerate with -write-bench-plan)")
	}
}

func writePlanBenchJSON(t *testing.T) {
	t.Helper()
	f := planBenchFile{
		GeneratedBy: "go test ./internal/transform -run TestBenchPlanJSON -write-bench-plan",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
	}
	configs := []struct {
		name string
		n, m int
		run  func(*lang.Program) error
	}{
		{name: "plan-200-loops/full-restart", n: 20, m: 10, run: runFullRestart},
		{name: "plan-200-loops/incremental", n: 20, m: 10, run: runIncremental},
		{name: "plan-25-loops/incremental", n: 5, m: 5, run: runIncremental},
		{name: "plan-100-loops/incremental", n: 20, m: 5, run: runIncremental},
	}
	ns := map[string]float64{}
	for _, c := range configs {
		prog := planProgram(t, genManyLoopSrc(c.n, c.m))
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := c.run(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
		v := float64(r.T.Nanoseconds()) / float64(r.N)
		ns[c.name] = v
		f.Entries = append(f.Entries, planBenchEntry{
			Name: c.name, Loops: c.n * c.m, NsPerOp: v, N: r.N,
		})
		t.Logf("%s: %.0f ns/op (N=%d)", c.name, v, r.N)
	}
	f.SpeedupIncremental = ns["plan-200-loops/full-restart"] / ns["plan-200-loops/incremental"]
	f.Scaling4xLoops = ns["plan-100-loops/incremental"] / ns["plan-25-loops/incremental"]
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchPlanJSONPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote BENCH_plan.json (incremental speedup %.2fx, 4x-loops scaling %.2fx)\n",
		f.SpeedupIncremental, f.Scaling4xLoops)
}
