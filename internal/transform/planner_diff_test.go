package transform

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lang"
	"repro/internal/nbody"
	"repro/internal/parexec"
)

// TestIncrementalMatchesFullRestart is the differential oracle for the
// incremental planner: over the whole testdata corpus, both measured
// workloads, and the generated many-loop program, AutoParallelize must
// produce byte-identical plan text AND byte-identical transformed
// programs to the full-restart reference planner. Any divergence means
// the memoized summaries or the verdict cache returned a stale fact.
func TestIncrementalMatchesFullRestart(t *testing.T) {
	srcs := map[string]string{
		"parexec.PolyNormalizePSL": parexec.PolyNormalizePSL,
		"nbody.BarnesHutForcePSL":  nbody.BarnesHutForcePSL,
		"gen-many-loop-6x4":        genManyLoopSrc(6, 4),
	}
	files, err := filepath.Glob("../../testdata/*.psl")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata corpus files found")
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		srcs["testdata/"+filepath.Base(f)] = string(data)
	}

	for _, width := range []int{2, 4} {
		for name, src := range srcs {
			t.Run(name, func(t *testing.T) {
				prog, err := lang.Parse(src)
				if err != nil {
					t.Fatal(err)
				}
				got, err := AutoParallelize(prog, width)
				if err != nil {
					t.Fatalf("incremental planner: %v", err)
				}
				want, err := autoParallelizeFullRestart(prog, width)
				if err != nil {
					t.Fatalf("full-restart planner: %v", err)
				}
				if g, w := got.String(), want.String(); g != w {
					t.Errorf("width %d: plan text diverged\nincremental:\n%s\nfull restart:\n%s", width, g, w)
				}
				gp, wp := lang.Format(got.Program), lang.Format(want.Program)
				if gp != wp {
					t.Errorf("width %d: transformed program diverged\nincremental:\n%s\nfull restart:\n%s", width, gp, wp)
				}
			})
		}
	}
}
