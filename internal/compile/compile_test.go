package compile

import (
	"testing"

	"repro/internal/lang"
)

const listSrc = `
type OneWayList [X]
{ int data, aux;
  real weight;
  OneWayList *next is uniquely forward along X;
};

function int sum(OneWayList *head) {
  var OneWayList *p = head;
  var int s = 0;
  while p != NULL {
    s = s + p->data;
    p = p->next;
  }
  return s;
}

procedure touch(OneWayList *p) {
  p->weight = 1.5;
  p->next = NULL;
}
`

func mustCompile(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestSlotAssignment: parameters take the first slots, each declaration
// gets its own slot, and the frame size counts every declaration.
func TestSlotAssignment(t *testing.T) {
	cp := mustCompile(t, listSrc)
	f := cp.Func("sum")
	if f == nil {
		t.Fatal("sum not compiled")
	}
	if len(f.Params) != 1 || f.Params[0].Slot != 0 || f.Params[0].Name != "head" {
		t.Fatalf("params = %+v", f.Params)
	}
	// head, p, s — no temporaries needed for this body.
	if f.Slots != 3 {
		t.Errorf("sum frame has %d slots, want 3", f.Slots)
	}
	if got := cp.FuncIndex("touch"); got != 1 {
		t.Errorf("FuncIndex(touch) = %d", got)
	}
	if cp.Func("nope") != nil || cp.FuncIndex("nope") != -1 {
		t.Error("unknown function must resolve to nil / -1")
	}
}

// TestFieldOffsets: offsets index the declaration's Data/Pointers
// slices in source order.
func TestFieldOffsets(t *testing.T) {
	cp := mustCompile(t, listSrc)
	f := cp.Func("touch")
	if len(f.Body) != 2 {
		t.Fatalf("touch body has %d statements", len(f.Body))
	}
	st0, ok := f.Body[0].(*StoreField)
	if !ok {
		t.Fatalf("stmt 0 is %T", f.Body[0])
	}
	// weight is the third data field (data, aux, weight).
	if st0.IsPtr || st0.Off != 2 || st0.Field != "weight" || st0.TypeName != "OneWayList" {
		t.Errorf("weight store = %+v", st0)
	}
	st1, ok := f.Body[1].(*StoreField)
	if !ok {
		t.Fatalf("stmt 1 is %T", f.Body[1])
	}
	if !st1.IsPtr || st1.Off != 0 || st1.Field != "next" {
		t.Errorf("next store = %+v", st1)
	}
}

// TestShadowing: an inner declaration gets a fresh slot and inner
// references resolve to it, while the initializer still sees the outer
// binding (the checker's scoping rules).
func TestShadowing(t *testing.T) {
	cp := mustCompile(t, `
function int f(int x) {
  var int y = x;
  if x > 0 {
    var int x = y + 1;
    y = x;
  }
  return y;
}
`)
	f := cp.Func("f")
	// x, y, inner x.
	if f.Slots != 3 {
		t.Fatalf("frame has %d slots, want 3", f.Slots)
	}
	ifs := f.Body[1].(*If)
	inner := ifs.Then[0].(*VarSet)
	if inner.Slot == f.Params[0].Slot {
		t.Error("inner x must shadow with a fresh slot")
	}
	// The initializer "y + 1" resolves y to the outer slot.
	init := inner.Init.(*Bin)
	if ref := init.X.(*SlotRef); ref.Name != "y" {
		t.Errorf("init references %q", ref.Name)
	}
	asgn := ifs.Then[1].(*AssignSlot)
	if rhs := asgn.RHS.(*SlotRef); rhs.Slot != inner.Slot {
		t.Errorf("y = x resolves x to slot %d, want inner slot %d", rhs.Slot, inner.Slot)
	}
}

// TestBuiltinResolution: builtins compile to their kind, user calls to
// a function index.
func TestBuiltinResolution(t *testing.T) {
	cp := mustCompile(t, `
function real g(real x) { return sqrt(abs(x)) + rand(); }
function real h(real x) { print("x", x); return g(x); }
`)
	h := cp.Func("h")
	ps := h.Body[0].(*CallStmt)
	if ps.Call.Builtin != BuiltinPrint {
		t.Errorf("print resolved to %v", ps.Call.Builtin)
	}
	ret := h.Body[1].(*Return)
	call := ret.Value.(*Call)
	if call.Builtin != NotBuiltin || call.FuncIdx != cp.FuncIndex("g") {
		t.Errorf("g call = %+v", call)
	}
}

// TestCompileRejectsUnchecked: compiling a raw (untyped) program
// reports an error instead of panicking.
func TestCompileRejectsUnchecked(t *testing.T) {
	prog, err := lang.ParseRaw(listSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(prog); err == nil {
		t.Fatal("Compile accepted an unchecked program")
	}
}

// TestForallLowering: loop variables get slots and the Parallel flag
// survives lowering.
func TestForallLowering(t *testing.T) {
	cp := mustCompile(t, `
procedure loops() {
  var int s = 0;
  for i = 0 to 7 { s = s + i; }
  forall i = 0 to 7 { print(i); }
}
`)
	f := cp.Func("loops")
	ser := f.Body[1].(*For)
	par := f.Body[2].(*For)
	if ser.Parallel || !par.Parallel {
		t.Errorf("Parallel flags: serial=%v parallel=%v", ser.Parallel, par.Parallel)
	}
	if ser.Slot == par.Slot {
		t.Error("sibling loop variables should still get distinct slots")
	}
}
