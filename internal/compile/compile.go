// Package compile lowers a checked, normalized PSL program into a
// slot-resolved IR: the front end of the fast execution engine.
//
// The tree-walking interpreter in package interp resolves everything at
// run time — every variable reference walks a stack of
// map[string]*Value scopes, every field access hashes the field name
// into the node's maps, every call looks the callee up by name. That is
// fine for an oracle, but it makes the measured R1/R2 speedups
// "speedups of a slow interpreter". This package moves all of that
// resolution to compile time:
//
//   - every function gets a flat frame of numbered variable slots; the
//     resolver assigns an index to each declaration (parameters, var
//     statements, loop variables), so a reference is a slice index and
//     forking a frame for a parallel iteration is one slice copy
//     instead of rebuilding a chain of maps;
//   - every field access carries the field's offset within its record
//     declaration (the index into adds.Decl.Data or .Pointers), so the
//     heap can be addressed positionally;
//   - every call site is pre-resolved to a builtin kind or a function
//     index.
//
// The IR is pure data over package lang's types — it carries no
// execution state and no dependency on the interpreter — so package
// interp can consume it to build its pre-bound closure engine (see
// interp's "compiled" engine) without an import cycle, and tests can
// assert resolution facts (slot counts, offsets) directly.
//
// Compile expects the program to have passed lang.Check; it returns an
// error (rather than panicking) on untyped or unresolvable input so
// callers can fall back to the tree-walker.
//
// # Immutability
//
// A Program is immutable once Compile returns: neither this package
// nor its consumers may mutate it (or the lang.Program it references)
// afterwards. That contract is what lets one compiled program be
// shared, without locks, by every interpreter instance and worker fork
// executing it — interp memoizes the closure code it builds from the
// IR per lang.Program, and the serving layer (internal/serve) keeps
// cached programs hot across many concurrent requests. The contract is
// enforced by interp's TestCompiledProgramSharedAcrossGoroutines,
// which compiles once and executes the same program from 16 goroutines
// under the race detector.
package compile

import (
	"fmt"

	"repro/internal/adds"
	"repro/internal/lang"
)

// Program is a compiled program: one Func per lang.FuncDecl, in the
// same order.
type Program struct {
	// Lang is the source program (kept for type declarations and the
	// oracle interpreter).
	Lang  *lang.Program
	Funcs []*Func
	index map[string]int
}

// Func returns the named compiled function, or nil.
func (p *Program) Func(name string) *Func {
	i, ok := p.index[name]
	if !ok {
		return nil
	}
	return p.Funcs[i]
}

// FuncIndex returns the index of the named function, or -1.
func (p *Program) FuncIndex(name string) int {
	i, ok := p.index[name]
	if !ok {
		return -1
	}
	return i
}

// Func is one compiled function: a flat frame of Slots variable slots
// and a lowered body.
type Func struct {
	Name string
	// Decl is the source declaration.
	Decl *lang.FuncDecl
	// Slots is the frame size: the number of distinct variable
	// declarations (each declaration gets its own slot; slots are not
	// reused across sibling scopes, which keeps the resolver trivially
	// correct at the cost of a few unused slots per frame).
	Slots int
	// Params lists the parameter slots in declaration order (always
	// slots 0..len(Params)-1).
	Params []Param
	// Result is nil for procedures.
	Result lang.Type
	Body   []Stmt
}

// Param is one resolved parameter.
type Param struct {
	Name string
	Slot int
	Type lang.Type
}

// ---------------------------------------------------------------------------
// IR statements

// Stmt is a lowered statement.
type Stmt interface {
	stmt()
	Pos() lang.Pos
}

type stmtBase struct{ P lang.Pos }

func (s stmtBase) Pos() lang.Pos { return s.P }
func (stmtBase) stmt()           {}

// Block is a nested brace block appearing in statement position.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// VarSet declares (or, on loop re-entry, re-initializes) a slot:
// "var T x = init;". A nil Init means the type's zero value.
type VarSet struct {
	stmtBase
	Name string
	Slot int
	Type lang.Type
	Init Expr // nil = zero value of Type
}

// AssignSlot is "x = rhs;" with x resolved to a slot.
type AssignSlot struct {
	stmtBase
	Name string
	Slot int
	Type lang.Type // static type of the target (coercion destination)
	RHS  Expr
}

// StoreField is "base->field[index] = rhs;" with the field resolved to
// an offset within the record declaration.
type StoreField struct {
	stmtBase
	Base     Expr
	TypeName string // record type of base (static)
	Field    string
	Off      int  // index into decl.Pointers (IsPtr) or decl.Data
	IsPtr    bool // pointer field vs data field
	Index    Expr // nil unless the field is a pointer array
	Type     lang.Type
	RHS      Expr
}

// While is a while loop.
type While struct {
	stmtBase
	Cond Expr
	Body []Stmt
}

// If is a conditional; Else is nil when absent.
type If struct {
	stmtBase
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// Return returns from the function; Value is nil in procedures.
type Return struct {
	stmtBase
	Value Expr
}

// CallStmt is a call evaluated for effect.
type CallStmt struct {
	stmtBase
	Call *Call
}

// For is a counted loop; Parallel marks a forall.
type For struct {
	stmtBase
	VarName  string
	Slot     int
	From, To Expr
	Body     []Stmt
	Parallel bool
}

// ---------------------------------------------------------------------------
// IR expressions

// Expr is a lowered expression.
type Expr interface {
	expr()
	Pos() lang.Pos
	Type() lang.Type
}

type exprBase struct {
	P lang.Pos
	T lang.Type
}

func (e exprBase) Pos() lang.Pos   { return e.P }
func (e exprBase) Type() lang.Type { return e.T }
func (exprBase) expr()             {}

// SlotRef reads a variable slot.
type SlotRef struct {
	exprBase
	Name string
	Slot int
}

// IntLit, RealLit, StrLit, BoolLit, NullLit are literals.
type IntLit struct {
	exprBase
	Val int64
}

type RealLit struct {
	exprBase
	Val float64
}

type StrLit struct {
	exprBase
	Val string
}

type BoolLit struct {
	exprBase
	Val bool
}

type NullLit struct{ exprBase }

// New allocates a record; Decl is pre-resolved.
type New struct {
	exprBase
	TypeName string
	Decl     *adds.Decl
}

// Load is "base->field[index]" with the field resolved to an offset.
type Load struct {
	exprBase
	X        Expr
	TypeName string
	Field    string
	Off      int
	IsPtr    bool
	Index    Expr // nil unless pointer array
}

// Builtin enumerates the pre-resolved builtin functions.
type Builtin int

// Builtin kinds; NotBuiltin marks a user-function call.
const (
	NotBuiltin Builtin = iota
	BuiltinSqrt
	BuiltinAbs
	BuiltinRand
	BuiltinPrint
)

// Call is a pre-resolved call: a builtin kind, or FuncIdx into
// Program.Funcs.
type Call struct {
	exprBase
	Name    string
	Builtin Builtin
	FuncIdx int // valid when Builtin == NotBuiltin
	Args    []Expr
}

// Bin is a binary operation.
type Bin struct {
	exprBase
	Op   lang.Token
	X, Y Expr
}

// Un is a unary operation.
type Un struct {
	exprBase
	Op lang.Token
	X  Expr
}

// ---------------------------------------------------------------------------
// Compilation

// Compile lowers a checked program. All resolution errors (unknown
// names, untyped expressions) indicate the program was not checked and
// are reported, never panicked.
func Compile(p *lang.Program) (*Program, error) {
	cp := &Program{Lang: p, index: make(map[string]int, len(p.Funcs))}
	for i, f := range p.Funcs {
		cp.index[f.Name] = i
		cf := &Func{Name: f.Name, Decl: f, Result: f.Result}
		cp.Funcs = append(cp.Funcs, cf)
	}
	for i, f := range p.Funcs {
		if err := cp.compileFunc(cp.Funcs[i], f); err != nil {
			return nil, err
		}
	}
	return cp, nil
}

func (cp *Program) compileFunc(cf *Func, f *lang.FuncDecl) error {
	r := &resolver{cp: cp, fn: f}
	r.push()
	for _, prm := range f.Params {
		slot := r.declare(prm.Name)
		cf.Params = append(cf.Params, Param{Name: prm.Name, Slot: slot, Type: prm.Type})
	}
	body, err := r.block(f.Body)
	if err != nil {
		return fmt.Errorf("compile: %s: %w", f.Name, err)
	}
	cf.Body = body
	cf.Slots = r.nslots
	return nil
}

// resolver assigns slots with the same scoping rules the checker
// enforced: innermost declaration wins, each block opens a scope.
type resolver struct {
	cp     *Program
	fn     *lang.FuncDecl
	scopes []map[string]int
	nslots int
}

func (r *resolver) push() { r.scopes = append(r.scopes, map[string]int{}) }
func (r *resolver) pop()  { r.scopes = r.scopes[:len(r.scopes)-1] }

func (r *resolver) declare(name string) int {
	slot := r.nslots
	r.nslots++
	r.scopes[len(r.scopes)-1][name] = slot
	return slot
}

func (r *resolver) lookup(name string) (int, bool) {
	for i := len(r.scopes) - 1; i >= 0; i-- {
		if s, ok := r.scopes[i][name]; ok {
			return s, true
		}
	}
	return 0, false
}

func (r *resolver) block(b *lang.Block) ([]Stmt, error) {
	r.push()
	defer r.pop()
	out := make([]Stmt, 0, len(b.Stmts))
	for _, s := range b.Stmts {
		cs, err := r.stmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}

func (r *resolver) stmt(s lang.Stmt) (Stmt, error) {
	switch s := s.(type) {
	case *lang.Block:
		body, err := r.block(s)
		if err != nil {
			return nil, err
		}
		return &Block{stmtBase: stmtBase{s.Pos()}, Stmts: body}, nil

	case *lang.VarStmt:
		// The initializer sees the enclosing scope, not the new slot.
		init, err := r.expr(s.Init)
		if err != nil {
			return nil, err
		}
		slot := r.declare(s.Name)
		return &VarSet{stmtBase: stmtBase{s.Pos()}, Name: s.Name, Slot: slot, Type: s.DeclType, Init: init}, nil

	case *lang.AssignStmt:
		rhs, err := r.expr(s.RHS)
		if err != nil {
			return nil, err
		}
		switch lhs := s.LHS.(type) {
		case *lang.Ident:
			slot, ok := r.lookup(lhs.Name)
			if !ok {
				return nil, fmt.Errorf("%s: unresolved variable %q", s.Pos(), lhs.Name)
			}
			return &AssignSlot{stmtBase: stmtBase{s.Pos()}, Name: lhs.Name, Slot: slot, Type: lhs.Type(), RHS: rhs}, nil
		case *lang.FieldExpr:
			base, err := r.expr(lhs.X)
			if err != nil {
				return nil, err
			}
			idx, err := r.expr(lhs.Index)
			if err != nil {
				return nil, err
			}
			typeName, off, isPtr, err := r.fieldOffset(lhs)
			if err != nil {
				return nil, err
			}
			return &StoreField{stmtBase: stmtBase{s.Pos()}, Base: base, TypeName: typeName,
				Field: lhs.Field, Off: off, IsPtr: isPtr, Index: idx, Type: lhs.Type(), RHS: rhs}, nil
		}
		return nil, fmt.Errorf("%s: bad assignment target %T", s.Pos(), s.LHS)

	case *lang.WhileStmt:
		cond, err := r.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		body, err := r.block(s.Body)
		if err != nil {
			return nil, err
		}
		return &While{stmtBase: stmtBase{s.Pos()}, Cond: cond, Body: body}, nil

	case *lang.IfStmt:
		cond, err := r.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		then, err := r.block(s.Then)
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if s.Else != nil {
			els, err = r.block(s.Else)
			if err != nil {
				return nil, err
			}
			if els == nil {
				els = []Stmt{}
			}
		}
		return &If{stmtBase: stmtBase{s.Pos()}, Cond: cond, Then: then, Else: els}, nil

	case *lang.ReturnStmt:
		v, err := r.expr(s.Value)
		if err != nil {
			return nil, err
		}
		return &Return{stmtBase: stmtBase{s.Pos()}, Value: v}, nil

	case *lang.CallStmt:
		call, err := r.call(s.Call)
		if err != nil {
			return nil, err
		}
		return &CallStmt{stmtBase: stmtBase{s.Pos()}, Call: call}, nil

	case *lang.ForStmt:
		from, err := r.expr(s.From)
		if err != nil {
			return nil, err
		}
		to, err := r.expr(s.To)
		if err != nil {
			return nil, err
		}
		r.push()
		slot := r.declare(s.Var)
		body, err := r.block(s.Body)
		r.pop()
		if err != nil {
			return nil, err
		}
		return &For{stmtBase: stmtBase{s.Pos()}, VarName: s.Var, Slot: slot,
			From: from, To: to, Body: body, Parallel: s.Parallel}, nil
	}
	return nil, fmt.Errorf("%s: unknown statement %T", s.Pos(), s)
}

// fieldOffset resolves base->field against the record declaration of
// the base's static pointer type.
func (r *resolver) fieldOffset(fe *lang.FieldExpr) (typeName string, off int, isPtr bool, err error) {
	if fe.X.Type() == nil {
		return "", 0, false, fmt.Errorf("%s: untyped field base (program not checked?)", fe.Pos())
	}
	elem, ok := lang.IsPointer(fe.X.Type())
	if !ok {
		return "", 0, false, fmt.Errorf("%s: field base is not a pointer", fe.Pos())
	}
	decl := r.cp.Lang.Universe.Decl(elem)
	if decl == nil {
		return "", 0, false, fmt.Errorf("%s: unknown record type %q", fe.Pos(), elem)
	}
	for i := range decl.Pointers {
		if decl.Pointers[i].Name == fe.Field {
			return elem, i, true, nil
		}
	}
	for i := range decl.Data {
		if decl.Data[i].Name == fe.Field {
			return elem, i, false, nil
		}
	}
	return "", 0, false, fmt.Errorf("%s: type %q has no field %q", fe.Pos(), elem, fe.Field)
}

func (r *resolver) call(e *lang.CallExpr) (*Call, error) {
	args := make([]Expr, len(e.Args))
	for i, a := range e.Args {
		ca, err := r.expr(a)
		if err != nil {
			return nil, err
		}
		args[i] = ca
	}
	c := &Call{exprBase: exprBase{e.Pos(), e.Type()}, Name: e.Func, Args: args}
	switch e.Func {
	case "sqrt":
		c.Builtin = BuiltinSqrt
	case "abs":
		c.Builtin = BuiltinAbs
	case "rand":
		c.Builtin = BuiltinRand
	case "print":
		c.Builtin = BuiltinPrint
	default:
		idx := r.cp.FuncIndex(e.Func)
		if idx < 0 {
			return nil, fmt.Errorf("%s: call to unknown function %q", e.Pos(), e.Func)
		}
		c.FuncIdx = idx
	}
	return c, nil
}

func (r *resolver) expr(e lang.Expr) (Expr, error) {
	switch e := e.(type) {
	case nil:
		return nil, nil

	case *lang.Ident:
		slot, ok := r.lookup(e.Name)
		if !ok {
			return nil, fmt.Errorf("%s: unresolved variable %q", e.Pos(), e.Name)
		}
		return &SlotRef{exprBase: exprBase{e.Pos(), e.Type()}, Name: e.Name, Slot: slot}, nil

	case *lang.IntLit:
		return &IntLit{exprBase: exprBase{e.Pos(), e.Type()}, Val: e.Val}, nil
	case *lang.RealLit:
		return &RealLit{exprBase: exprBase{e.Pos(), e.Type()}, Val: e.Val}, nil
	case *lang.StrLit:
		return &StrLit{exprBase: exprBase{e.Pos(), e.Type()}, Val: e.Val}, nil
	case *lang.BoolLit:
		return &BoolLit{exprBase: exprBase{e.Pos(), e.Type()}, Val: e.Val}, nil
	case *lang.NullLit:
		return &NullLit{exprBase: exprBase{e.Pos(), e.Type()}}, nil

	case *lang.NewExpr:
		decl := r.cp.Lang.Universe.Decl(e.TypeName)
		if decl == nil {
			return nil, fmt.Errorf("%s: new of unknown type %q", e.Pos(), e.TypeName)
		}
		return &New{exprBase: exprBase{e.Pos(), e.Type()}, TypeName: e.TypeName, Decl: decl}, nil

	case *lang.FieldExpr:
		x, err := r.expr(e.X)
		if err != nil {
			return nil, err
		}
		idx, err := r.expr(e.Index)
		if err != nil {
			return nil, err
		}
		typeName, off, isPtr, err := r.fieldOffset(e)
		if err != nil {
			return nil, err
		}
		return &Load{exprBase: exprBase{e.Pos(), e.Type()}, X: x, TypeName: typeName,
			Field: e.Field, Off: off, IsPtr: isPtr, Index: idx}, nil

	case *lang.CallExpr:
		return r.call(e)

	case *lang.BinExpr:
		x, err := r.expr(e.X)
		if err != nil {
			return nil, err
		}
		y, err := r.expr(e.Y)
		if err != nil {
			return nil, err
		}
		return &Bin{exprBase: exprBase{e.Pos(), e.Type()}, Op: e.Op, X: x, Y: y}, nil

	case *lang.UnExpr:
		x, err := r.expr(e.X)
		if err != nil {
			return nil, err
		}
		return &Un{exprBase: exprBase{e.Pos(), e.Type()}, Op: e.Op, X: x}, nil
	}
	return nil, fmt.Errorf("%s: unknown expression %T", e.Pos(), e)
}
