// Sparse-matrix example: the paper's §3.1.3 orthogonal list (Figure 3)
// doing real work — assembling a 1-D Poisson operator, running a few
// Jacobi iterations, and scaling disjoint rows in parallel.
//
// Run with: go run ./examples/sparsematrix
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/structures/orthlist"
)

func main() {
	const n = 64

	// Assemble the tridiagonal Poisson matrix A (2 on the diagonal, -1
	// off-diagonal) as an orthogonal list.
	a := orthlist.New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 2)
		if i > 0 {
			a.Set(i, i-1, -1)
		}
		if i < n-1 {
			a.Set(i, i+1, -1)
		}
	}
	if err := a.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Poisson operator: %dx%d with %d nonzeros (%.1f%% dense)\n",
		n, n, a.NNZ(), 100*float64(a.NNZ())/float64(n*n))

	// Solve A x = b with Jacobi iteration, b = all ones.
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	for iter := 0; iter < 30000; iter++ {
		ax := a.MulVec(x)
		var maxDelta float64
		for i := 0; i < n; i++ {
			r := b[i] - (ax[i] - 2*x[i]) // remove diagonal contribution
			nx := r / 2
			if d := math.Abs(nx - x[i]); d > maxDelta {
				maxDelta = d
			}
			x[i] = nx
		}
		if maxDelta < 1e-12 {
			fmt.Printf("Jacobi converged after %d sweeps\n", iter+1)
			break
		}
	}
	res := a.MulVec(x)
	var norm float64
	for i := range res {
		norm += (res[i] - b[i]) * (res[i] - b[i])
	}
	fmt.Printf("residual ‖Ax-b‖ = %.2e\n", math.Sqrt(norm))

	// Row scaling in parallel: rows are disjoint along X, the property
	// the ADDS declaration states and the analysis exploits.
	d := orthlist.New(4, 6)
	for r := 0; r < 4; r++ {
		for c := r; c < 6; c += 2 {
			d.Set(r, c, 1)
		}
	}
	d.ScaleRowsParallel(4, func(row int) float64 { return float64(row + 1) })
	fmt.Println("\nrow-scaled matrix (rows scaled by 1,2,3,4 in parallel):")
	for _, row := range d.Dense() {
		fmt.Printf("  %v\n", row)
	}

	// Transpose and multiply exercise both dimensions.
	at := a.Transpose()
	sym := true
	for r := 0; r < n && sym; r++ {
		for cIdx := 0; cIdx < n; cIdx++ {
			if a.Get(r, cIdx) != at.Get(r, cIdx) {
				sym = false
				break
			}
		}
	}
	fmt.Printf("\nA symmetric (A == Aᵀ): %v\n", sym)
	sq := a.Mul(a)
	fmt.Printf("A² has %d nonzeros (pentadiagonal)\n", sq.NNZ())
}
