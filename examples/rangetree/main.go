// Range-tree example: the paper's §3.1.3 two-dimensional range tree
// (Figure 4) answering the paper's own queries — "find all points
// within the interval x1..x2" and "find all points within the bounding
// rectangle (x1,y1) and (x2,y2)" — over a synthetic star catalogue.
//
// Run with: go run ./examples/rangetree
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/structures/rangetree"
)

func main() {
	// A deterministic "star catalogue" of 5000 points.
	r := rand.New(rand.NewSource(1992))
	pts := make([]rangetree.Point, 5000)
	for i := range pts {
		pts[i] = rangetree.Point{
			X:  r.Float64() * 360, // right ascension, degrees
			Y:  r.Float64()*180 - 90,
			ID: i,
		}
	}
	t := rangetree.Build(pts)
	if err := t.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built a 2-D range tree over %d points\n", t.Len())

	// Interval query along x (walks the leaves list).
	strip := t.QueryX(100, 101)
	fmt.Printf("stars with RA in [100°, 101°]: %d\n", len(strip))

	// Rectangle queries (canonical decomposition + secondary trees).
	rects := [][4]float64{
		{0, -90, 360, 90},   // the whole sky
		{120, -10, 130, 10}, // a 10°x20° window
		{359, 80, 360, 90},  // a tiny corner
	}
	for _, q := range rects {
		got := t.QueryRect(q[0], q[1], q[2], q[3])
		// Cross-check against a brute-force scan.
		want := 0
		for _, p := range pts {
			if p.X >= q[0] && p.X <= q[2] && p.Y >= q[1] && p.Y <= q[3] {
				want++
			}
		}
		status := "OK"
		if len(got) != want {
			status = fmt.Sprintf("MISMATCH (want %d)", want)
		}
		fmt.Printf("rect [%g,%g]x[%g,%g]: %d points — %s\n",
			q[0], q[2], q[1], q[3], len(got), status)
	}

	// The leaves dimension: a linear sweep in x order.
	leaves := t.Leaves()
	fmt.Printf("leftmost star: RA=%.2f  rightmost: RA=%.2f (leaves list is x-sorted)\n",
		leaves[0].X, leaves[len(leaves)-1].X)
}
