// Autopar: the auto-parallelization planner end to end.
//
// The same polynomial program is submitted twice — once over an
// unannotated list node, once over the ADDS-declared OneWayList — and
// the planner (core.AutoParallel) decides, with no function names or
// loop indices from us, which loops run parallel. The unannotated
// version is rejected wholesale (the analysis cannot prove the
// traversal visits distinct nodes); the annotated version gets its
// scale loop strip-mined automatically, and the plan explains every
// verdict — the paper's pitch, push-button.
//
// Run with: go run ./examples/autopar
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/interp"
)

// The program body is identical in both submissions; only the type
// declaration changes.
const body = `
function %[1]s * poly(int n) {
  var %[1]s *head = NULL;
  var int i = 0;
  while i < n {
    var %[1]s *t = new %[1]s;
    t->coef = i + 1;
    t->exp = i;
    t->next = head;
    head = t;
    i = i + 1;
  }
  return head;
}

procedure scale(%[1]s *head, int c) {
  var %[1]s *p = head;
  while p != NULL {
    p->coef = p->coef * c;
    p = p->next;
  }
}

function int checksum(%[1]s *head) {
  var int s = 0;
  var %[1]s *p = head;
  while p != NULL {
    s = s + p->coef * (p->exp + 1);
    p = p->next;
  }
  return s;
}

function int main(int n, int c) {
  var %[1]s *h = poly(n);
  scale(h, c);
  return checksum(h);
}
`

const unannotated = `
type ListNode
{ int coef, exp;
  ListNode *next;
};
`

const annotated = `
type OneWayList [X]
{ int coef, exp;
  OneWayList *next is uniquely forward along X;
};
`

func main() {
	plans := map[string]*core.AutoPlan{}
	for _, sub := range []struct{ title, decl, elem string }{
		{"unannotated ListNode", unannotated, "ListNode"},
		{"ADDS-annotated OneWayList", annotated, "OneWayList"},
	} {
		fmt.Printf("== %s ==\n\n", sub.title)
		c, err := core.Compile(sub.decl + fmt.Sprintf(body, sub.elem))
		if err != nil {
			log.Fatal(err)
		}
		auto, err := c.AutoParallel(8) // strip width 8
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(auto.Plan)
		fmt.Println()
		plans[sub.title] = auto
	}

	fmt.Println("The annotation is the whole difference: same loops, same code,")
	fmt.Println("but only the declared structure lets the analysis prove the")
	fmt.Println("iterations independent.")

	// Run the approved plan in parallel and show it agrees with the
	// serial program bit-for-bit.
	auto := plans["ADDS-annotated OneWayList"]
	args := []interp.Value{interp.IntVal(1000), interp.IntVal(3)}
	serial, err := core.Compile(annotated + fmt.Sprintf(body, "OneWayList"))
	if err != nil {
		log.Fatal(err)
	}
	want, _, err := serial.Run(core.RunConfig{}, "main", args...)
	if err != nil {
		log.Fatal(err)
	}
	got, stats, err := auto.RunParallel(core.RunConfig{}, 4, "main", args...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserial checksum:   %d\n", want.I)
	fmt.Printf("parallel checksum: %d (4 PEs, %d barriers)\n", got.I, stats.Barriers)
	if got.I != want.I {
		log.Fatal("results diverge!")
	}
	fmt.Println("identical — the planner's transformation is semantics-preserving.")
}
