// Scheduling demo: the Barnes-Hut force loop (R2) under each of
// parexec's scheduling policies.
//
// The pipeline is the paper's §4.3 — prove the force loop's iterations
// independent, strip-mine it — but the strip width is 4×PEs instead of
// the paper's width = PEs, so each barrier-to-barrier region hands the
// executor more iterations than workers and the iteration→PE mapping
// becomes the scheduling policy's choice (§4.3.3 / experiment X2):
// static block, static cyclic (the paper's "simple static
// scheduling"), or dynamic self-scheduling. Whatever the policy, the
// checksum is bit-identical to the serial interpreter — scheduling
// moves work between PEs, never across iterations.
//
// Run with: go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/nbody"
	"repro/internal/parexec"
)

func main() {
	c, err := core.Compile(nbody.BarnesHutForcePSL)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Dependence verdict for the force-computation loop ==")
	reps, err := c.LoopReports(nbody.ForceFunc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(reps[nbody.ForceLoop])

	pes := runtime.GOMAXPROCS(0)
	width := 4 * pes
	fmt.Printf("\n== Strip-mining at width %d (4×PEs) for %d PEs ==\n", width, pes)
	par, err := c.StripMine(nbody.ForceFunc, nbody.ForceLoop, width)
	if err != nil {
		log.Fatal(err)
	}

	args := []interp.Value{interp.IntVal(96), interp.RealVal(0.5)}
	t0 := time.Now()
	seqV, _, err := c.Run(core.RunConfig{Seed: 7}, nbody.ForceFunc, args...)
	if err != nil {
		log.Fatal(err)
	}
	seqD := time.Since(t0)
	fmt.Printf("\nserial:          checksum %+.9f in %v\n", seqV.F, seqD)

	policies := []struct {
		label string
		pol   parexec.Policy
	}{
		{"block", parexec.StaticBlock},
		{"cyclic", parexec.StaticCyclic},
		{"dynamic(1)", parexec.Dynamic(1)},
		{"dynamic(4)", parexec.Dynamic(4)},
	}
	for _, p := range policies {
		t0 = time.Now()
		parV, stats, err := par.RunParallel(core.RunConfig{Seed: 7, Sched: p.pol}, pes, nbody.ForceFunc, args...)
		if err != nil {
			log.Fatal(err)
		}
		parD := time.Since(t0)
		fmt.Printf("%-16s checksum %+.9f in %v (%d barriers, speedup %.2fx)\n",
			p.label+":", parV.F, parD, stats.Barriers, float64(seqD)/float64(parD))
		if parV.F != seqV.F {
			log.Fatalf("%s: result diverged from serial!", p.label)
		}
	}
	fmt.Println("\nall policies reproduced the serial checksum bit-for-bit")
	if pes < 2 {
		fmt.Println("(run on a multi-core host to see wall-clock speedup)")
	}
}
