// N-body example: the paper's §4 evaluation in miniature.
//
// Runs the native Go Barnes-Hut sequentially and strip-mined in
// parallel, checks they agree, compares against the O(N²) direct
// method, and then runs the PSL version of the same program through the
// full compile→validate→analyze→transform pipeline.
//
// Run with: go run ./examples/nbody
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/nbody"
)

func main() {
	const n, steps = 2000, 3

	fmt.Printf("== Native Barnes-Hut, N=%d, %d steps (GOMAXPROCS=%d) ==\n",
		n, steps, runtime.GOMAXPROCS(0))
	seq := nbody.NewUniform(n, 7, 0.5, 0.01)
	t0 := time.Now()
	seq.Run("seq", steps, 0)
	seqTime := time.Since(t0)

	par := nbody.NewUniform(n, 7, 0.5, 0.01)
	t0 = time.Now()
	par.Run("pool", steps, 4)
	parTime := time.Since(t0)

	match := true
	for i := range seq.Bodies {
		if seq.Bodies[i].Pos != par.Bodies[i].Pos {
			match = false
			break
		}
	}
	fmt.Printf("sequential: %v   parallel(4 workers): %v   trajectories match: %v\n",
		seqTime.Round(time.Millisecond), parTime.Round(time.Millisecond), match)
	if runtime.GOMAXPROCS(0) < 2 {
		fmt.Println("(single-CPU machine: wall-clock speedup needs more cores;")
		fmt.Println(" the deterministic Sequent model below shows the parallel structure)")
	}

	// The O(N log N) vs O(N²) crossover (§4.1's motivation for tree codes).
	for _, m := range []int{400, 2000, 8000} {
		direct := nbody.NewUniform(m, 7, 0.5, 0.01)
		bh := nbody.NewUniform(m, 7, 0.5, 0.01)
		t0 = time.Now()
		direct.Run("direct", 1, 0)
		directTime := time.Since(t0)
		t0 = time.Now()
		bh.Run("seq", 1, 0)
		bhTime := time.Since(t0)
		fmt.Printf("N=%-5d 1 step: direct O(N²) %-10v Barnes-Hut %v\n",
			m, directTime.Round(time.Microsecond), bhTime.Round(time.Microsecond))
	}

	fmt.Println("\n== The PSL tree code through the pipeline ==")
	c, err := core.Compile(nbody.BarnesHutPSL)
	if err != nil {
		log.Fatal(err)
	}
	for _, fn := range []string{"build_tree", "timestep"} {
		keys, err := c.ExitViolations(fn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: abstraction valid at exit: %v\n", fn, len(keys) == 0)
	}
	reps, err := c.LoopReports(nbody.TimestepFunc)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range reps {
		fmt.Printf("BHL%d parallelizable: %v\n", i+1, r.Parallelizable)
	}

	par1, err := c.StripMine(nbody.TimestepFunc, nbody.BHL1, 4)
	if err != nil {
		log.Fatal(err)
	}
	par2, err := par1.StripMine(nbody.TimestepFunc, nbody.BHL2, 4)
	if err != nil {
		log.Fatal(err)
	}
	args := []interp.Value{
		interp.IntVal(64), interp.IntVal(1), interp.RealVal(0.5), interp.RealVal(0.01),
	}
	_, seqStats, err := c.Run(core.RunConfig{Simulate: true, PEs: 1, Seed: 7}, "simulate", args...)
	if err != nil {
		log.Fatal(err)
	}
	_, parStats, err := par2.Run(core.RunConfig{Simulate: true, PEs: 4, Seed: 7}, "simulate", args...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated Sequent, N=64, 1 step: seq %d cycles, par(4) %d cycles → speedup %.2f\n",
		seqStats.Cycles, parStats.Cycles,
		float64(seqStats.Cycles)/float64(parStats.Cycles))
}
