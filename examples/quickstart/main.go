// Quickstart: the paper's §3.3.2 example end-to-end.
//
// We compile the polynomial-scaling loop, print the path matrices the
// analysis computes (with and without the ADDS declaration), ask the
// dependence test for a verdict, strip-mine the loop across 4 PEs, and
// run both versions to show they agree.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/interp"
)

const src = `
type OneWayList [X]
{ int coef, exp;
  OneWayList *next is uniquely forward along X;
};

function OneWayList * poly(int n) {
  // Build coefficients n, n-1, ..., 1 with exponents 0..n-1.
  var OneWayList *head = NULL;
  var int i = 0;
  while i < n {
    var OneWayList *t = new OneWayList;
    t->coef = i + 1;
    t->exp = i;
    t->next = head;
    head = t;
    i = i + 1;
  }
  return head;
}

procedure scale(OneWayList *head, int c) {
  var OneWayList *p = head;
  while p != NULL {
    p->coef = p->coef * c;
    p = p->next;
  }
}

function int checksum(OneWayList *head) {
  var int s = 0;
  var OneWayList *p = head;
  while p != NULL {
    s = s + p->coef * (p->exp + 1);
    p = p->next;
  }
  return s;
}

function int main(int n, int c) {
  var OneWayList *h = poly(n);
  scale(h, c);
  return checksum(h);
}
`

func main() {
	c, err := core.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== The path matrix after `p = p->next` in scale ==")
	m, err := c.MatrixAfter("scale", "p = p->next;")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m)
	fmt.Println("head, p and p' are never aliases — the §3.3.2 conclusion.")

	fmt.Println("\n== Dependence verdicts ==")
	reps, err := c.LoopReports("scale")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reps {
		fmt.Println(r)
	}

	fmt.Println("\n== Strip-mining scale across 4 PEs ==")
	par, err := c.StripMine("scale", 0, 4)
	if err != nil {
		log.Fatal(err)
	}
	seqV, _, err := c.Run(core.RunConfig{}, "main", interp.IntVal(1000), interp.IntVal(3))
	if err != nil {
		log.Fatal(err)
	}
	parV, stats, err := par.Run(core.RunConfig{Simulate: true, PEs: 4}, "main",
		interp.IntVal(1000), interp.IntVal(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential checksum: %d\n", seqV.I)
	fmt.Printf("parallel checksum:   %d (simulated cycles %d, %d barriers)\n",
		parV.I, stats.Cycles, stats.Barriers)
	if seqV.I != parV.I {
		log.Fatal("results diverge!")
	}
	fmt.Println("identical — the transformation is semantics-preserving.")
}
