// Parexec demo: the §3.3.2 polynomial program on real goroutines.
//
// The pipeline is the paper's — prove the normalize loop's iterations
// independent, strip-mine it across PEs — but execution is the real
// thing: parexec runs the PE iteration procedures concurrently on a
// worker pool, with a barrier per outer-loop step (FOR1/FOR2), and
// merges results deterministically so the parallel checksum is
// bit-identical to the serial one.
//
// Run with: go run ./examples/parexec
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/parexec"
)

func main() {
	c, err := core.Compile(parexec.PolyNormalizePSL)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Dependence verdict for the normalize loop ==")
	reps, err := c.LoopReports(parexec.NormalizeFunc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(reps[parexec.NormalizeLoop])

	pes := runtime.GOMAXPROCS(0)
	fmt.Printf("\n== Strip-mining across %d PEs (GOMAXPROCS) ==\n", pes)
	par, err := c.StripMine(parexec.NormalizeFunc, parexec.NormalizeLoop, pes)
	if err != nil {
		log.Fatal(err)
	}

	args := []interp.Value{interp.IntVal(3000), interp.RealVal(1.001)}
	t0 := time.Now()
	seqV, _, err := c.Run(core.RunConfig{}, "run", args...)
	if err != nil {
		log.Fatal(err)
	}
	seqD := time.Since(t0)

	t0 = time.Now()
	parV, stats, err := par.RunParallel(core.RunConfig{}, pes, "run", args...)
	if err != nil {
		log.Fatal(err)
	}
	parD := time.Since(t0)

	fmt.Printf("serial:   checksum %.6f in %v\n", seqV.F, seqD)
	fmt.Printf("parallel: checksum %.6f in %v (%d barriers, %d PEs)\n",
		parV.F, parD, stats.Barriers, pes)
	if seqV.F != parV.F {
		log.Fatal("results diverge!")
	}
	fmt.Printf("identical results; measured speedup %.2fx\n",
		float64(seqD)/float64(parD))
	if pes < 2 {
		fmt.Println("(run on a multi-core host to see wall-clock speedup)")
	}
}
