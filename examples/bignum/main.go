// Bignum example: the paper's §3.1.1 "infinite precision" integer
// package built on one-way linked lists (three decimal digits per
// node, least significant first), plus the polynomial package from the
// same section, including the parallel coefficient-scaling loop the
// paper analyzes.
//
// Run with: go run ./examples/bignum
package main

import (
	"fmt"

	"repro/internal/structures/bignum"
	"repro/internal/structures/poly"
)

func main() {
	// The paper's own example: 3,298,991 → nodes 991 | 298 | 3.
	v := bignum.New(3298991)
	fmt.Printf("3298991 stored as %d list nodes (3 digits each): %s\n", v.Limbs(), v)

	// Arbitrary precision in action.
	f100 := bignum.Factorial(100)
	fmt.Printf("100! has %d digits (%d nodes): %s...\n",
		len(f100.String()), f100.Limbs(), f100.String()[:40])

	fib := bignum.Fib(500)
	fmt.Printf("fib(500) = %s... (%d digits)\n", fib.String()[:40], len(fib.String()))

	// Arithmetic identities as a self-check.
	a := bignum.MustParse("123456789123456789123456789")
	b := bignum.MustParse("987654321987654321")
	lhs := a.Add(b).Mul(a)
	rhs := a.Mul(a).Add(b.Mul(a))
	fmt.Printf("(a+b)·a == a·a + b·a: %v\n", lhs.Cmp(rhs) == 0)

	// Polynomials: the paper's 451x^31 + 10x^13 + 4.
	p := poly.New(
		poly.Term{Coef: 451, Exp: 31},
		poly.Term{Coef: 10, Exp: 13},
		poly.Term{Coef: 4, Exp: 0},
	)
	fmt.Printf("\np(x) = %s\n", p)
	fmt.Printf("p'(x) = %s\n", p.Derivative())
	fmt.Printf("p(1) = %g\n", p.Eval(1))

	// The §3.3.2 loop — multiply each coefficient by a constant — done
	// with the strip-mined parallel traversal.
	q := poly.New()
	for i := 0; i < 64; i++ {
		q = q.Add(poly.New(poly.Term{Coef: int64(i + 1), Exp: i}))
	}
	q.ScaleParallel(4, 10)
	fmt.Printf("\nscaled 64-term polynomial on 4 PEs; leading term now %dx^%d\n",
		q.Terms()[0].Coef, q.Terms()[0].Exp)
	if err := q.Verify(); err != nil {
		fmt.Println("invariant violation:", err)
	} else {
		fmt.Println("representation invariants hold after parallel traversal")
	}
}
