// Validation example: the paper's §3.3.1 abstraction-validation story,
// statically and at runtime.
//
// Static: the analysis flags the temporary sharing in a subtree move
// and confirms the repair; an unrepaired move and a deliberate ring
// stay flagged. Runtime: the same programs run under the §2.2 shape
// checks, reproducing the verdicts dynamically.
//
// Run with: go run ./examples/validation
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const src = `
type BinTree [down]
{ int data;
  BinTree *left, *right is uniquely forward along down;
};

type OneWayList [X]
{ int data;
  OneWayList *next is uniquely forward along X;
};

// The paper's example: temporarily broken, immediately repaired.
procedure move_subtree(BinTree *p1, BinTree *p2) {
  p1->left = p2->left;
  p2->left = NULL;
}

// Without the repair, the violation persists.
procedure move_subtree_broken(BinTree *p1, BinTree *p2) {
  p1->left = p2->left;
}

// A ring closed over locally built nodes: a visible, persistent cycle.
function OneWayList * make_ring() {
  var OneWayList *head = new OneWayList;
  var OneWayList *last = new OneWayList;
  head->next = last;
  last->next = head;
  return head;
}

// Drive the runtime demonstration.
procedure main() {
  var BinTree *a = new BinTree;
  var BinTree *b = new BinTree;
  var BinTree *c = new BinTree;
  b->left = c;
  move_subtree(a, b);        // transient sharing, repaired
  var OneWayList *ring = make_ring();
  print("built", ring->data);
}
`

func main() {
	c, err := core.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Static validation (general path matrix analysis) ==")
	for _, fn := range []string{"move_subtree", "move_subtree_broken", "make_ring"} {
		keys, err := c.ExitViolations(fn)
		if err != nil {
			log.Fatal(err)
		}
		if len(keys) == 0 {
			fmt.Printf("  %-22s abstraction valid at exit\n", fn)
		} else {
			fmt.Printf("  %-22s VIOLATION at exit: %v\n", fn, keys)
		}
	}

	fmt.Println("\n== Runtime shape checks (§2.2's debugging switch) ==")
	_, _, violations, err := c.RunChecked(core.RunConfig{}, "main")
	if err != nil {
		log.Fatal(err)
	}
	if len(violations) == 0 {
		fmt.Println("  no runtime events")
	}
	for _, v := range violations {
		fmt.Printf("  observed: %s\n", v)
	}
	fmt.Println("\nThe transient sharing inside move_subtree and the deliberate ring")
	fmt.Println("both surface at runtime; the static analysis additionally knows the")
	fmt.Println("sharing was repaired (move_subtree exits valid) while the ring and")
	fmt.Println("the unrepaired move do not.")
}
