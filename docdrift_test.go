// Doc-drift checks: every command the documentation tells the reader
// to run must still exist and parse. README.md, DESIGN.md, and
// docs/ARCHITECTURE.md quote `go run ./...` commands; this test
// extracts them, verifies the package path exists, and — for
// cmd/experiments, cmd/pslserved, cmd/pslrouter, and cmd/loadgen,
// whose flag surfaces are defined in internal/expflags precisely so
// they can be checked here — parses the quoted flags against the real
// flag set.
// CI runs this as its own step.
package repro

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/expflags"
)

var docFiles = []string{"README.md", "DESIGN.md", filepath.Join("docs", "ARCHITECTURE.md")}

// goRunRe matches a documented command: `go run ./pkg/path [flags...]`
// up to the end of the line or closing backtick.
var goRunRe = regexp.MustCompile("go run (\\./[\\w/.-]+)([^`\\n]*)")

func experimentsFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	expflags.Register(fs)
	return fs
}

// cmdFlagSets maps each doc-checked binary to a fresh flag set built
// from the same expflags registration the binary itself uses.
var cmdFlagSets = map[string]func() *flag.FlagSet{
	"./cmd/experiments": experimentsFlagSet,
	"./cmd/pslserved": func() *flag.FlagSet {
		fs := flag.NewFlagSet("pslserved", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		expflags.RegisterServe(fs)
		return fs
	},
	"./cmd/loadgen": func() *flag.FlagSet {
		fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		expflags.RegisterLoadgen(fs)
		return fs
	},
	"./cmd/pslrouter": func() *flag.FlagSet {
		fs := flag.NewFlagSet("pslrouter", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		expflags.RegisterRouter(fs)
		return fs
	},
}

// TestDocCommandsParse: documented `go run` targets exist, and
// documented cmd/experiments invocations parse against the current
// flag set.
func TestDocCommandsParse(t *testing.T) {
	found := 0
	for _, file := range docFiles {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v (documented files must exist)", file, err)
		}
		for _, m := range goRunRe.FindAllStringSubmatch(string(data), -1) {
			found++
			pkg, rest := m[1], m[2]
			if i := strings.Index(rest, "#"); i >= 0 {
				rest = rest[:i]
			}
			st, err := os.Stat(filepath.FromSlash(pkg))
			if err != nil || !st.IsDir() {
				t.Errorf("%s quotes %q but %s is not a package directory", file, strings.TrimSpace(m[0]), pkg)
				continue
			}
			mkfs, checked := cmdFlagSets[pkg]
			if !checked {
				continue
			}
			// Shell suffixes ("&" for backgrounding) are not flags.
			args := strings.Fields(rest)
			for len(args) > 0 && args[len(args)-1] == "&" {
				args = args[:len(args)-1]
			}
			if err := mkfs().Parse(args); err != nil {
				t.Errorf("%s: documented command %q no longer parses: %v",
					file, strings.TrimSpace(m[0]), err)
			}
		}
	}
	if found < 5 {
		t.Fatalf("only %d `go run` commands found across %v — extraction regex rotted?", found, docFiles)
	}
}

// TestDocFlagReferences: DESIGN.md's experiment-index table
// abbreviates repeat commands to just their flags (e.g. `-fig 2`);
// every flag name quoted in a table row must still be registered.
// (Prose outside the table may mention go-tool flags like `-race`,
// so only `|`-delimited table lines are scanned.)
func TestDocFlagReferences(t *testing.T) {
	data, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	fs := experimentsFlagSet()
	re := regexp.MustCompile("`-([a-z]+)( [^`]*)?`")
	found := 0
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(strings.TrimSpace(line), "|") {
			continue
		}
		for _, m := range re.FindAllStringSubmatch(line, -1) {
			found++
			if fs.Lookup(m[1]) == nil {
				t.Errorf("DESIGN.md's index references flag -%s, which cmd/experiments no longer defines", m[1])
			}
		}
	}
	if found == 0 {
		t.Skip("no abbreviated flag references in DESIGN.md's index")
	}
}
