package repro

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/lang"
)

func compileFile(t *testing.T, name string) *core.Compilation {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return c
}

// TestDataPolyScale: the file-based version of the §3.3.2 pipeline:
// parse from disk, prove, transform, run, compare.
func TestDataPolyScale(t *testing.T) {
	c := compileFile(t, "polyscale.psl")
	reps, err := c.LoopReports("scale")
	if err != nil {
		t.Fatal(err)
	}
	if !reps[0].Parallelizable {
		t.Fatalf("scale: %s", reps[0])
	}
	want, _, err := c.Run(core.RunConfig{}, "main")
	if err != nil {
		t.Fatal(err)
	}
	for _, pes := range []int{2, 4, 7} {
		par, err := c.StripMine("scale", 0, pes)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := par.Run(core.RunConfig{}, "main")
		if err != nil {
			t.Fatal(err)
		}
		if got.I != want.I {
			t.Errorf("pes=%d: %d vs %d", pes, got.I, want.I)
		}
	}
}

// TestDataViolations: each procedure in violations.psl has the
// validation outcome its comment claims.
func TestDataViolations(t *testing.T) {
	c := compileFile(t, "violations.psl")
	cases := []struct {
		fn    string
		valid bool
	}{
		{"move_subtree", true},
		{"move_subtree_broken", false},
		{"rotate_right", true},
		{"make_ring", false},
		{"reverse", true},
		{"main", true},
	}
	for _, tc := range cases {
		keys, err := c.ExitViolations(tc.fn)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(keys) == 0; got != tc.valid {
			t.Errorf("%s: valid=%v, want %v (violations %v)", tc.fn, got, tc.valid, keys)
		}
	}
	// The reversal runs correctly too: the list 4,3,2,1,0 reversed is
	// 0,1,2,3,4 → digits 01234.
	v, _, err := c.Run(core.RunConfig{}, "main")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 1234 {
		t.Errorf("main = %d, want 1234", v.I)
	}
}

// TestDataOrthList: the across-traversals verdict split and execution.
func TestDataOrthList(t *testing.T) {
	c := compileFile(t, "orthlist.psl")
	scaleReps, err := c.LoopReports("scale_row")
	if err != nil {
		t.Fatal(err)
	}
	if !scaleReps[0].Parallelizable {
		t.Errorf("scale_row: %s", scaleReps[0])
	}
	sumReps, err := c.LoopReports("sum_row")
	if err != nil {
		t.Fatal(err)
	}
	if sumReps[0].Parallelizable {
		t.Errorf("sum_row must be rejected (reduction): %s", sumReps[0])
	}
	v, _, err := c.Run(core.RunConfig{}, "main")
	if err != nil {
		t.Fatal(err)
	}
	// sum((1..10)) * 7 = 385.
	if v.I != 385 {
		t.Errorf("main = %d, want 385", v.I)
	}
	// make_row prepends with back-links; the declaration must hold.
	keys, err := c.ExitViolations("make_row")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Errorf("make_row: %v", keys)
	}
}

// TestDataRunWithShapeChecks: the testdata programs stay clean under
// runtime shape checking, except the deliberate ring.
func TestDataRunWithShapeChecks(t *testing.T) {
	for _, name := range []string{"polyscale.psl", "violations.psl", "orthlist.psl"} {
		src, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := lang.Parse(string(src))
		if err != nil {
			t.Fatal(err)
		}
		ip := interp.New(prog, interp.Config{ShapeChecks: true, ShapeChecksFatal: true})
		if _, err := ip.Call("main"); err != nil {
			t.Errorf("%s under shape checks: %v", name, err)
		}
	}
}
